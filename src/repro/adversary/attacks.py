"""The insider attack suite — Mallory with superuser and physical access.

§2.1's threat model: Alice legitimately stores a record, later regrets it,
and as "Mallory" — with superuser powers and direct physical access to the
storage hardware — does everything she can to alter it, remove it, or deny
its existence *undetectably*.  She can rewrite any byte of untrusted state
(block store, VRDT, stored signed artifacts) and fabricate arbitrary
responses to clients; she cannot open the SCPU (tamper response destroys
it) and cannot forge its signatures.

Every attack below follows the same shape:

1. set up a store with a *target* record (what Mallory regrets),
2. perform the insider mutation / fabricate the malicious response,
3. play investigator Bob: read and verify through a
   :class:`~repro.core.client.WormClient`,
4. report whether the client **detected** the attack.

``expected_detected`` encodes the paper's claims: every Theorem 1/2 attack
must be detected, with one deliberate exception —
:func:`hide_within_freshness_window` — whose success is the *designed*,
bounded exposure of freshness mechanism (ii) in §4.2.1 (a record can be
denied for at most one freshness window after its write).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.auth import (
    AccumulatorFrontierProof,
    MerkleFrontierProof,
    MerkleMembershipProof,
    _merkle_leaf,
)
from repro.core.client import WormClient
from repro.core.errors import FreshnessError, TamperedError, VerificationError
from repro.core.proofs import (
    BaseBoundProof,
    DeletionProofResponse,
    DeletionWindowProof,
    NeverAllocatedProof,
    ReadResult,
)
from repro.core.worm import StrongWormStore
from repro.crypto.envelope import Envelope, Purpose
from repro.crypto.keys import SigningKey
from repro.hardware.scpu import Strength

__all__ = ["AttackOutcome", "AttackEnvironment", "ATTACKS", "run_attack"]


@dataclass
class AttackOutcome:
    """Result of one attack run."""

    name: str
    theorem: int
    detected: bool
    expected_detected: bool
    detail: str

    @property
    def as_expected(self) -> bool:
        return self.detected == self.expected_detected


@dataclass
class AttackEnvironment:
    """Everything an attack needs: the store, a verifying client, the clock."""

    store: StrongWormStore
    client: WormClient

    @property
    def clock(self):
        return self.store.scpu.clock

    def verify(self, result: ReadResult, sn: int) -> Optional[str]:
        """Run Bob's verification; returns the failure reason, or None."""
        try:
            self.client.verify_read(result, sn)
            return None
        except (VerificationError, FreshnessError) as exc:
            return f"{type(exc).__name__}: {exc}"


def _outcome(name: str, theorem: int, failure: Optional[str],
             expected_detected: bool = True) -> AttackOutcome:
    return AttackOutcome(
        name=name,
        theorem=theorem,
        detected=failure is not None,
        expected_detected=expected_detected,
        detail=failure or "attack went undetected",
    )


# ---------------------------------------------------------------------------
# Theorem 1: committed records cannot be altered or removed undetected.
# ---------------------------------------------------------------------------

def tamper_record_payload(env: AttackEnvironment) -> AttackOutcome:
    """Rewrite a committed record's bytes directly on the medium."""
    receipt = env.store.write([b"incriminating wire transfer: $4,000,000"],
                              policy="sox")
    rd = receipt.vrd.rdl[0]
    env.store.blocks.unchecked_overwrite(
        rd.key, b"routine wire transfer:       $4,000.00")
    failure = env.verify(env.store.read(receipt.sn), receipt.sn)
    return _outcome("tamper-record-payload", 1, failure)


def tamper_attributes(env: AttackEnvironment) -> AttackOutcome:
    """Shorten a record's retention period in the VRDT (keep old sigs)."""
    import dataclasses
    receipt = env.store.write([b"audit trail"], policy="sox")
    vrd = env.store.vrdt.get_active(receipt.sn)
    hacked_attr = dataclasses.replace(vrd.attr, retention_seconds=1.0)
    hacked = dataclasses.replace(vrd, attr=hacked_attr)
    env.store.vrdt.replace_active(hacked)
    failure = env.verify(env.store.read(receipt.sn), receipt.sn)
    return _outcome("tamper-attributes", 1, failure)


def resign_with_forged_key(env: AttackEnvironment) -> AttackOutcome:
    """Replace record and re-sign everything with Mallory's own key.

    Mallory can generate keys and produce internally consistent
    signatures — but her key has no CA certificate binding it to this
    store's SCPU, so clients reject it.
    """
    import dataclasses
    receipt = env.store.write([b"original ledger page"], policy="sec17a-4")
    vrd = env.store.vrdt.get_active(receipt.sn)
    forged_data = b"doctored ledger page"
    rd = vrd.rdl[0]
    env.store.blocks.unchecked_overwrite(rd.key, forged_data)

    mallory = SigningKey.generate(512, role="s")
    from repro.crypto.hashing import ChainedHasher
    hasher = ChainedHasher()
    hasher.update(forged_data)
    forged_hash = hasher.digest()
    metasig = mallory.sign_envelope(Envelope(
        purpose=Purpose.METASIG,
        fields={"sn": vrd.sn, "attr": vrd.attr.canonical_bytes()},
        timestamp=env.store.now))
    datasig = mallory.sign_envelope(Envelope(
        purpose=Purpose.DATASIG,
        fields={"sn": vrd.sn, "data_hash": forged_hash},
        timestamp=env.store.now))
    forged_rdl = (dataclasses.replace(rd, length=len(forged_data)),)
    forged = dataclasses.replace(vrd, rdl=forged_rdl, metasig=metasig,
                                 datasig=datasig, data_hash=forged_hash)
    env.store.vrdt.replace_active(forged)
    failure = env.verify(env.store.read(receipt.sn), receipt.sn)
    return _outcome("resign-with-forged-key", 1, failure)


def truncate_record_list(env: AttackEnvironment) -> AttackOutcome:
    """Drop one record from a multi-record VR (partial destruction)."""
    import dataclasses
    receipt = env.store.write([b"email body", b"attachment: smoking gun.pdf"],
                              policy="sec17a-4")
    vrd = env.store.vrdt.get_active(receipt.sn)
    truncated = dataclasses.replace(vrd, rdl=vrd.rdl[:1])
    env.store.vrdt.replace_active(truncated)
    failure = env.verify(env.store.read(receipt.sn), receipt.sn)
    return _outcome("truncate-record-list", 1, failure)


def fake_deletion_proof(env: AttackEnvironment) -> AttackOutcome:
    """Remove an active record and present a self-made 'deletion proof'."""
    receipt = env.store.write([b"whistleblower complaint"], policy="hipaa")
    mallory = SigningKey.generate(512, role="d")
    fake = mallory.sign_envelope(Envelope(
        purpose=Purpose.DELETION_PROOF,
        fields={"sn": receipt.sn},
        timestamp=env.store.now))
    malicious = ReadResult(sn=receipt.sn, status="deleted",
                           proof=DeletionProofResponse(proof=fake))
    failure = env.verify(malicious, receipt.sn)
    return _outcome("fake-deletion-proof", 1, failure)


def reuse_deletion_proof(env: AttackEnvironment) -> AttackOutcome:
    """Serve a *legitimate* deletion proof — for the wrong record."""
    doomed = env.store.write([b"ephemeral note"], retention_seconds=1.0)
    target = env.store.write([b"long-lived contract"], policy="sox")
    env.clock.advance(5.0)
    env.store.maintenance(compact=False)
    real_proof = env.store.vrdt.get_deletion_proof(doomed.sn)
    assert real_proof is not None
    malicious = ReadResult(sn=target.sn, status="deleted",
                           proof=DeletionProofResponse(proof=real_proof))
    failure = env.verify(malicious, target.sn)
    return _outcome("reuse-deletion-proof", 1, failure)


def swap_record_payloads(env: AttackEnvironment) -> AttackOutcome:
    """Swap the payloads of two committed records of identical length."""
    a = env.store.write([b"ACCOUNT A: balance 9,000,000"], policy="sox")
    b = env.store.write([b"ACCOUNT B: balance 0,000,001"], policy="sox")
    key_a = a.vrd.rdl[0].key
    key_b = b.vrd.rdl[0].key
    data_a = env.store.blocks.get(key_a)
    data_b = env.store.blocks.get(key_b)
    env.store.blocks.unchecked_overwrite(key_a, data_b)
    env.store.blocks.unchecked_overwrite(key_b, data_a)
    failure = env.verify(env.store.read(a.sn), a.sn)
    return _outcome("swap-record-payloads", 1, failure)


def splice_envelope_purposes(env: AttackEnvironment) -> AttackOutcome:
    """Present a legitimate S_s(SN_current) as a 'deletion proof'.

    Cross-protocol splicing: both constructs are genuine SCPU signatures,
    but the envelope purpose tags make them non-interchangeable.
    """
    receipt = env.store.write([b"meeting minutes"], policy="sox")
    sn_current_env = env.store.vrdt.sn_current_envelope
    assert sn_current_env is not None
    malicious = ReadResult(sn=receipt.sn, status="deleted",
                           proof=DeletionProofResponse(proof=sn_current_env))
    failure = env.verify(malicious, receipt.sn)
    return _outcome("splice-envelope-purposes", 1, failure)


# ---------------------------------------------------------------------------
# Theorem 2: insiders cannot hide active records.
# ---------------------------------------------------------------------------

def hide_with_stale_sn_current(env: AttackEnvironment) -> AttackOutcome:
    """Claim 'never stored' using a pre-write S_s(SN_current) replay.

    Mallory keeps the old signed upper bound from before the regretted
    write and serves it to deny the record exists.  Once the client's
    freshness window has passed, the stale timestamp gives her away.
    """
    stale_envelope = env.store.vrdt.sn_current_envelope
    assert stale_envelope is not None
    receipt = env.store.write([b"the record Mallory regrets"], policy="sox")
    env.clock.advance(env.client.freshness_window + 60.0)
    malicious = ReadResult(sn=receipt.sn, status="never-allocated",
                           proof=NeverAllocatedProof(sn_current=stale_envelope))
    failure = env.verify(malicious, receipt.sn)
    return _outcome("hide-with-stale-sn-current", 2, failure)


def hide_within_freshness_window(env: AttackEnvironment) -> AttackOutcome:
    """The *designed* exposure: replaying a bound newer than the window.

    Inside the freshness window a stale bound is indistinguishable from
    an idle store, so this attack succeeds — for at most
    ``freshness_window`` seconds after the write, after which it becomes
    :func:`hide_with_stale_sn_current`.  The paper accepts this bounded
    exposure in exchange for SCPU-free reads (§4.2.1 mechanism (ii)).
    """
    stale_envelope = env.store.vrdt.sn_current_envelope
    assert stale_envelope is not None
    receipt = env.store.write([b"very recent record"], policy="sox")
    env.clock.advance(min(30.0, env.client.freshness_window / 2))
    malicious = ReadResult(sn=receipt.sn, status="never-allocated",
                           proof=NeverAllocatedProof(sn_current=stale_envelope))
    failure = env.verify(malicious, receipt.sn)
    return _outcome("hide-within-freshness-window", 2, failure,
                    expected_detected=False)


def hide_with_fresh_bound(env: AttackEnvironment) -> AttackOutcome:
    """Drop the VRDT entry and claim 'never stored' with a *fresh* bound.

    The monotonic consecutive SNs defeat this: once the SCPU's periodic
    refresh has run (at most one refresh interval after the write), the
    fresh signed SN_current is at or above the hidden record's SN, so
    'never allocated' is checkably false.  Combined with
    :func:`hide_with_stale_sn_current` (replaying the pre-refresh bound
    ages out of the freshness window), the total deniability horizon is
    bounded by refresh_interval + freshness_window.
    """
    receipt = env.store.write([b"subpoenaed email"], policy="sec17a-4")
    env.clock.advance(env.store.windows.refresh_interval + 1.0)
    env.store.maintenance()  # the SCPU's periodic refresh fires
    fresh = env.store.vrdt.sn_current_envelope
    assert fresh is not None
    malicious = ReadResult(sn=receipt.sn, status="never-allocated",
                           proof=NeverAllocatedProof(sn_current=fresh))
    failure = env.verify(malicious, receipt.sn)
    return _outcome("hide-with-fresh-bound", 2, failure)


def hide_with_expired_base(env: AttackEnvironment) -> AttackOutcome:
    """Claim 'below base' with an expired S_s(SN_base) from the past."""
    expired_base = env.store.scpu.sign_sn_base(validity_seconds=10.0)
    receipt = env.store.write([b"live record"], policy="sox")
    env.clock.advance(60.0)  # base signature expires
    malicious = ReadResult(sn=receipt.sn, status="deleted",
                           proof=BaseBoundProof(sn_base=expired_base))
    failure = env.verify(malicious, receipt.sn)
    return _outcome("hide-with-expired-base", 2, failure)


def hide_with_wrong_base(env: AttackEnvironment) -> AttackOutcome:
    """Claim 'below base' for an SN that is not below the signed base."""
    receipt = env.store.write([b"active record"], policy="sox")
    env.store.maintenance()
    base_env = env.store.vrdt.sn_base_envelope
    assert base_env is not None
    malicious = ReadResult(sn=receipt.sn, status="deleted",
                           proof=BaseBoundProof(sn_base=base_env))
    failure = env.verify(malicious, receipt.sn)
    return _outcome("hide-with-wrong-base", 2, failure)


def _expire_run(env: AttackEnvironment, count: int, retention: float = 1.0):
    """Write *count* short-lived records and expire them into a window."""
    receipts = [env.store.write([f"tmp-{i}".encode()],
                                retention_seconds=retention)
                for i in range(count)]
    env.clock.advance(retention + 5.0)
    env.store.maintenance()
    return receipts


def splice_deletion_windows(env: AttackEnvironment) -> AttackOutcome:
    """Combine bounds of two unrelated windows to 'cover' an active SN.

    Windows (a..b) and (c..d) exist legitimately; Mallory presents
    lower(a) with upper(d) to claim everything between — including the
    active target — was deleted.  The per-window random window_id
    correlation (§4.2.1) exposes the splice.
    """
    env.store.write([b"anchor record pinning SN_base"], policy="ferpa")
    _expire_run(env, 3)                       # window 1
    target = env.store.write([b"the active record in between"], policy="sox")
    _expire_run(env, 3)                       # window 2
    windows = env.store.vrdt.deletion_windows
    assert len(windows) >= 2, "setup failed to create two windows"
    spliced = DeletionWindowProof(lower=windows[0].lower,
                                  upper=windows[-1].upper)
    malicious = ReadResult(sn=target.sn, status="deleted", proof=spliced)
    failure = env.verify(malicious, target.sn)
    return _outcome("splice-deletion-windows", 2, failure)


def wrong_window_for_sn(env: AttackEnvironment) -> AttackOutcome:
    """Serve a valid deletion window that simply does not contain the SN."""
    env.store.write([b"anchor record pinning SN_base"], policy="ferpa")
    _expire_run(env, 3)
    target = env.store.write([b"post-window record"], policy="sox")
    window = env.store.vrdt.deletion_windows[0]
    malicious = ReadResult(
        sn=target.sn, status="deleted",
        proof=DeletionWindowProof(lower=window.lower, upper=window.upper))
    failure = env.verify(malicious, target.sn)
    return _outcome("wrong-window-for-sn", 2, failure)


def weak_signature_lapse(env: AttackEnvironment) -> AttackOutcome:
    """Serve a burst-signed record after its security lifetime lapsed.

    §4.3 assumes 512-bit signatures resist Mallory for only tens of
    minutes.  A record still weakly signed *after* that horizon could
    carry a forged signature — so clients must refuse it outright, which
    is what makes timely strengthening a safety property.
    """
    receipt = env.store.write([b"burst-period record"],
                              policy="sox", strength=Strength.WEAK)
    lifetime = 60 * 60.0  # 512-bit security lifetime (§4.3)
    env.clock.advance(lifetime + 120.0)
    # Mallory suppressed the strengthening pass; the record still has
    # its (now past-lifetime) weak signatures.
    failure = env.verify(env.store.read(receipt.sn), receipt.sn)
    return _outcome("weak-signature-lapse", 2, failure)


def downgrade_to_weak_signature(env: AttackEnvironment) -> AttackOutcome:
    """Serve the pre-strengthening weak VRD after its lifetime lapsed.

    Mallory archives the weak-signed VRD during the burst; after the
    idle-period strengthening she swaps it back in and waits out the
    512-bit lifetime (when she could plausibly have forged it).  Clients
    must reject the downgraded record even though its signatures are
    genuine — the *timestamped lifetime* is what expires.
    """
    receipt = env.store.write([b"burst-then-strengthened"],
                              policy="sox", strength=Strength.WEAK)
    weak_vrd = env.store.vrdt.get_active(receipt.sn)
    env.store.maintenance()  # honest strengthening happens
    env.clock.advance(2 * 60 * 60.0)  # well past the 512-bit lifetime
    env.store.maintenance()
    env.store.vrdt.replace_active(weak_vrd)  # the downgrade swap
    failure = env.verify(env.store.read(receipt.sn), receipt.sn)
    return _outcome("downgrade-to-weak-signature", 1, failure)


def destroy_window_artifacts(env: AttackEnvironment) -> AttackOutcome:
    """Wipe the signed window bounds and fabricate an unproven denial.

    With the artifacts destroyed the main CPU cannot produce *any* valid
    proof for a 'never stored' claim; the fabricated bare response fails
    verification — destruction is loud, not silent (the availability
    corner of the threat model).
    """
    receipt = env.store.write([b"the record"], policy="sox")
    env.store.vrdt.sn_current_envelope = None
    env.store.vrdt.sn_base_envelope = None
    malicious = ReadResult(sn=receipt.sn, status="never-allocated",
                           proof=NeverAllocatedProof(sn_current=None))
    try:
        env.client.verify_read(malicious, receipt.sn)
        failure = None
    except TamperedError:
        # Client-side verification never talks to an SCPU; a tamper trip
        # here means the harness itself is wired wrong — escalate.
        raise
    except Exception as exc:  # any failure counts as detection here
        failure = f"{type(exc).__name__}: {exc}"
    return _outcome("destroy-window-artifacts", 2, failure)


# ---------------------------------------------------------------------------
# Scheme-specific attacks: the Merkle and accumulator backends must uphold
# the same theorems.  Each attack rebuilds its world on the backend it
# targets (the provided environment only supplies the client's freshness
# window); detection must come from the scheme's own verification path.
# ---------------------------------------------------------------------------

def _rebuild_on_scheme(env: AttackEnvironment,
                       auth_scheme: str) -> AttackEnvironment:
    """A fresh world running a non-default authentication backend."""
    from repro.adversary.games import fresh_environment  # local: games imports us
    return fresh_environment(freshness_window=env.client.freshness_window,
                             auth_scheme=auth_scheme)


def forge_merkle_root(env: AttackEnvironment) -> AttackOutcome:
    """Doctor a record and re-root the Merkle tree under Mallory's key.

    Mallory rewrites the payload on the medium, rebuilds a tree whose
    leaf binds the doctored bytes, and signs the new root herself.  The
    proof is internally consistent — leaf, path, and root all match —
    but her key carries no CA certificate binding it to this store's
    SCPU, so the signed root is rejected before the leaf is even
    inspected.
    """
    import dataclasses
    env = _rebuild_on_scheme(env, "merkle")
    receipt = env.store.write([b"original ledger page"], policy="sec17a-4")
    forged_data = b"doctored ledger page"
    env.store.blocks.unchecked_overwrite(receipt.vrd.rdl[0].key, forged_data)

    from repro.crypto.hashing import ChainedHasher
    from repro.crypto.merkle import MerkleTree
    hasher = ChainedHasher()
    hasher.update(forged_data)
    vrd = env.store.vrdt.get_active(receipt.sn)
    leaf = _merkle_leaf(receipt.sn, vrd.attr.canonical_bytes(),
                        hasher.digest())
    tree = MerkleTree()
    index = tree.append(leaf)
    mallory = SigningKey.generate(512, role="s")
    signed_root = mallory.sign_envelope(Envelope(
        purpose=Purpose.MERKLE_ROOT,
        fields={"root": tree.root(), "sn_frontier": receipt.sn},
        timestamp=env.store.now))
    forged_proof = MerkleMembershipProof(signed_root=signed_root, leaf=leaf,
                                         path=tree.prove(index))
    malicious = dataclasses.replace(env.store.read(receipt.sn),
                                    proof=forged_proof)
    failure = env.verify(malicious, receipt.sn)
    return _outcome("forge-merkle-root", 1, failure)


def merkle_wrong_leaf_path(env: AttackEnvironment) -> AttackOutcome:
    """Serve one record's Merkle membership proof for another record.

    Both leaf and path are genuine — for the decoy.  The client rebuilds
    the expected leaf from the requested SN and the returned bytes, so
    the transplanted proof cannot authenticate the target.
    """
    import dataclasses
    env = _rebuild_on_scheme(env, "merkle")
    decoy = env.store.write([b"innocuous memo"], policy="sox")
    target = env.store.write([b"the regretted record"], policy="sox")
    decoy_result = env.store.read(decoy.sn)
    malicious = dataclasses.replace(env.store.read(target.sn),
                                    proof=decoy_result.proof)
    failure = env.verify(malicious, target.sn)
    return _outcome("merkle-wrong-leaf-path", 1, failure)


def accumulator_spliced_witness(env: AttackEnvironment) -> AttackOutcome:
    """Serve a genuine accumulator witness — minted for a different SN.

    The client never trusts a server-supplied prime: it recomputes the
    representative from the requested SN, so the decoy's witness fails
    ``w^p = value`` for the target.
    """
    import dataclasses
    env = _rebuild_on_scheme(env, "accumulator")
    decoy = env.store.write([b"innocuous memo"], policy="sox")
    target = env.store.write([b"the regretted record"], policy="sox")
    decoy_result = env.store.read(decoy.sn)
    target_result = env.store.read(target.sn)
    spliced = dataclasses.replace(target_result.proof,
                                  witness=decoy_result.proof.witness)
    malicious = dataclasses.replace(target_result, proof=spliced)
    failure = env.verify(malicious, target.sn)
    return _outcome("accumulator-spliced-witness", 1, failure)


def accumulator_resurrect_expired(env: AttackEnvironment) -> AttackOutcome:
    """Replay a pre-expiry witness to serve a deleted record as active.

    Mallory archives the record's read (VRD, payload, witness) before it
    expires.  The SCPU's removal changed the accumulated value, so the
    archived witness no longer satisfies ``w^p = value`` against the
    current signed statement — and the archived statement itself ages
    out of the freshness window.
    """
    import dataclasses
    env = _rebuild_on_scheme(env, "accumulator")
    doomed = env.store.write([b"soon-to-expire record"], retention_seconds=1.0)
    env.store.write([b"long-lived anchor"], policy="sox")
    archived = env.store.read(doomed.sn)
    env.clock.advance(10.0)
    env.store.maintenance()  # expiry removes the SN from the accumulator
    fresh_statement = env.store.auth.signed_value
    assert fresh_statement is not None
    resurrected = dataclasses.replace(archived.proof,
                                      signed_value=fresh_statement)
    malicious = dataclasses.replace(archived, proof=resurrected)
    failure = env.verify(malicious, doomed.sn)
    return _outcome("accumulator-resurrect-expired", 1, failure)


def merkle_stale_root_hiding(env: AttackEnvironment) -> AttackOutcome:
    """Deny a record with a signed Merkle root from before its write.

    The pre-write root's frontier is genuinely below the target SN, so
    the denial is internally consistent — but the root's timestamp ages
    out of the freshness window, exactly like a stale S_s(SN_current).
    """
    env = _rebuild_on_scheme(env, "merkle")
    stale_root = env.store.auth.signed_root
    assert stale_root is not None
    receipt = env.store.write([b"the record Mallory regrets"], policy="sox")
    env.clock.advance(env.client.freshness_window + 60.0)
    malicious = ReadResult(sn=receipt.sn, status="never-allocated",
                           proof=MerkleFrontierProof(signed_root=stale_root))
    failure = env.verify(malicious, receipt.sn)
    return _outcome("merkle-stale-root-hiding", 2, failure)


def accumulator_stale_value_hiding(env: AttackEnvironment) -> AttackOutcome:
    """Deny a record with a signed accumulator value from before its write."""
    env = _rebuild_on_scheme(env, "accumulator")
    stale_value = env.store.auth.signed_value
    assert stale_value is not None
    receipt = env.store.write([b"the record Mallory regrets"], policy="sox")
    env.clock.advance(env.client.freshness_window + 60.0)
    malicious = ReadResult(
        sn=receipt.sn, status="never-allocated",
        proof=AccumulatorFrontierProof(signed_value=stale_value))
    failure = env.verify(malicious, receipt.sn)
    return _outcome("accumulator-stale-value-hiding", 2, failure)


def accumulator_frontier_hiding(env: AttackEnvironment) -> AttackOutcome:
    """Deny a committed record with a perfectly *fresh* signed value.

    The statement's SN frontier is at or above the target, so the
    'never allocated' claim is checkably false — the monotone frontier
    plays the role S_s(SN_current) plays for windows.
    """
    env = _rebuild_on_scheme(env, "accumulator")
    receipt = env.store.write([b"subpoenaed email"], policy="sec17a-4")
    fresh_statement = env.store.auth.signed_value
    assert fresh_statement is not None
    malicious = ReadResult(
        sn=receipt.sn, status="never-allocated",
        proof=AccumulatorFrontierProof(signed_value=fresh_statement))
    failure = env.verify(malicious, receipt.sn)
    return _outcome("accumulator-frontier-hiding", 2, failure)


#: The full suite: name → (attack function, theorem number).
ATTACKS: List[Callable[[AttackEnvironment], AttackOutcome]] = [
    tamper_record_payload,
    tamper_attributes,
    resign_with_forged_key,
    truncate_record_list,
    fake_deletion_proof,
    reuse_deletion_proof,
    swap_record_payloads,
    splice_envelope_purposes,
    hide_with_stale_sn_current,
    hide_within_freshness_window,
    hide_with_fresh_bound,
    hide_with_expired_base,
    hide_with_wrong_base,
    splice_deletion_windows,
    wrong_window_for_sn,
    weak_signature_lapse,
    downgrade_to_weak_signature,
    destroy_window_artifacts,
    forge_merkle_root,
    merkle_wrong_leaf_path,
    accumulator_spliced_witness,
    accumulator_resurrect_expired,
    merkle_stale_root_hiding,
    accumulator_stale_value_hiding,
    accumulator_frontier_hiding,
]


def run_attack(attack: Callable[[AttackEnvironment], AttackOutcome],
               env: AttackEnvironment) -> AttackOutcome:
    """Execute one attack in *env* and return its outcome."""
    return attack(env)
