"""Insider adversary model: attack implementations and security games."""

from repro.adversary.attacks import (
    ATTACKS,
    AttackEnvironment,
    AttackOutcome,
    run_attack,
)
from repro.adversary.games import SuiteResult, fresh_environment, run_suite

__all__ = [
    "ATTACKS",
    "AttackEnvironment",
    "AttackOutcome",
    "run_attack",
    "SuiteResult",
    "fresh_environment",
    "run_suite",
]
