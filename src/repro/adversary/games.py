"""Security games backing Theorems 1 and 2 (§5).

* **Theorem 1** — "Data records committed to WORM storage can not be
  altered or removed undetected."
* **Theorem 2** — "Insiders with super-user powers are unable to 'hide'
  active data records from querying clients by claiming they have expired
  or were not stored in the first place."

:func:`run_suite` executes every attack from
:mod:`repro.adversary.attacks` in a fresh environment and checks each
outcome against its expectation.  The suite passes exactly when every
Theorem 1/2 attack is detected and the one *designed* exposure (hiding
within the freshness window) behaves as documented.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.adversary.attacks import (
    ATTACKS,
    AttackEnvironment,
    AttackOutcome,
)
from repro.core.worm import StrongWormStore
from repro.crypto.keys import CertificateAuthority
from repro.hardware.scpu import ScpuKeyring, SecureCoprocessor

__all__ = ["SuiteResult", "fresh_environment", "run_suite"]


@dataclass
class SuiteResult:
    """Aggregate outcome of the full attack suite."""

    outcomes: List[AttackOutcome] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def detected(self) -> int:
        return sum(1 for o in self.outcomes if o.detected)

    @property
    def surprises(self) -> List[AttackOutcome]:
        """Outcomes that contradict the paper's claims."""
        return [o for o in self.outcomes if not o.as_expected]

    @property
    def theorems_hold(self) -> bool:
        return not self.surprises

    def by_theorem(self, theorem: int) -> List[AttackOutcome]:
        return [o for o in self.outcomes if o.theorem == theorem]


def fresh_environment(keyring: Optional[ScpuKeyring] = None,
                      freshness_window: float = 300.0,
                      auth_scheme: str = "windows") -> AttackEnvironment:
    """A brand-new store + verifying client for one attack run.

    Attacks mutate untrusted state destructively, so each gets its own
    world; passing a pre-generated *keyring* avoids paying RSA keygen
    per attack.  *auth_scheme* selects the authentication backend under
    attack — the Merkle and accumulator attacks rebuild their world on
    the scheme they target.
    """
    from repro import demo_keyring
    from repro.core.config import StoreConfig

    ca = CertificateAuthority(bits=512)
    scpu = SecureCoprocessor(
        keyring=keyring if keyring is not None else demo_keyring())
    store = StrongWormStore(scpu=scpu,
                            config=StoreConfig(auth_scheme=auth_scheme))
    client = store.make_client(ca, freshness_window=freshness_window)
    return AttackEnvironment(store=store, client=client)


def run_suite(make_env: Optional[Callable[[], AttackEnvironment]] = None
              ) -> SuiteResult:
    """Run every attack, each in a fresh environment."""
    result = SuiteResult()
    for attack in ATTACKS:
        env = make_env() if make_env is not None else fresh_environment()
        result.outcomes.append(attack(env))
    return result
