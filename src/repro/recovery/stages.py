"""Staged, verified disaster recovery: rebuilding a dead site.

A whole primary site is gone — machines, disks, SCPU cards.  What
survives is (a) the untrusted :class:`~repro.recovery.replication.ReplicaSite`
at the standby, and (b) the *cryptographic* residue of the dead site:
its CA-certified public keys and every SCPU-signed construct the
replica holds.  :class:`SiteRecovery` rebuilds a fresh site from
exactly those two things, through five explicit stages::

    DISCOVER -> DOWNLOAD -> VERIFY -> REPLAY -> RESUME

* **DISCOVER** — inventory the replica's streams; establish trust in
  the dead site's keys through the CA (a forged certificate is
  :class:`TamperedError`, terminally); flip the new site into the
  ``recovering`` state.
* **DOWNLOAD** — materialize each shard's catalog image (snapshot +
  deltas, in sequence order) and charge the transfer time
  (``bytes / link_bandwidth``) to the virtual clock — the dominant
  term of the recovery-time objective.
* **VERIFY** — *before anything is imported*: every window
  authenticator (``S_s(SN_current)``, ``S_s(SN_base)``, deletion-window
  bounds, deletion proofs) and every VRD's metasig/datasig/data-hash is
  checked by the **new site's own SCPU** against the dead site's
  certified keys — the same discipline as compliant migration.  Any
  mismatch raises :class:`TamperedError` and recovery halts: a replica
  that lies does not get laundered into a fresh store.  (HMAC-witnessed
  records are *unverifiable by construction*, not tampered: they are
  excluded here and re-ingested from the journal in RESUME.)
* **REPLAY** — verified records are re-witnessed under the new site's
  SCPU via :meth:`~repro.core.worm.StrongWormStore.import_records`
  (attributes preserved, retention clocks keep running; one batched
  crossing per shard), building the old→new locator mapping.
* **RESUME** — the zero-loss ledger walk: every entry of the mirrored
  intent journal that is not already covered by a replayed record is
  re-submitted (at-least-once; WORM duplicates are harmless, lost
  records are compliance violations).  Tagged entries keep their tags
  so deferred tickets stay redeemable across the disaster.  Finally the
  site flips back to ``active``.

Recovery is **resumable**: after every stage (and after every shard
within REPLAY) the instance updates a JSON-able checkpoint; a process
that crashes mid-recovery is restarted with
``SiteRecovery(..., checkpoint=saved)`` and continues where it stopped.
Re-running a partially-replayed shard re-imports at-least-once — the
same duplicates-over-loss trade the journal makes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.errors import RecoveryError, TamperedError
from repro.core.locator import RecordLocator
from repro.core.sharded import ShardedWormStore, ShardedWriteReceipt
from repro.crypto.envelope import Purpose, SignedEnvelope
from repro.crypto.hashing import ChainedHasher
from repro.crypto.keys import CertificateAuthority
from repro.obs.bus import NULL_BUS, TelemetryBus
from repro.recovery.replication import ReplicaSite
from repro.storage.vrd import VirtualRecordDescriptor

__all__ = ["RecoveryStage", "RecoveryReport", "SiteRecovery",
           "RECOVERY_COUNTERS"]

#: Counter names the recovery pass maintains.
RECOVERY_COUNTERS = (
    "recovery.records_verified",
    "recovery.windows_verified",
    "recovery.records_replayed",
    "recovery.journal_requeued",
    "recovery.stages_completed",
)


def declare_recovery_metrics(bus: TelemetryBus) -> None:
    """Pre-declare the recovery counters on *bus* (idempotent)."""
    if not bus.enabled:
        return
    for name in RECOVERY_COUNTERS:
        bus.declare_counter(name)


class RecoveryStage:
    """Names of the recovery stages, in execution order."""

    DISCOVER = "discover"
    DOWNLOAD = "download"
    VERIFY = "verify"
    REPLAY = "replay"
    RESUME = "resume"
    DONE = "done"

    ORDER = (DISCOVER, DOWNLOAD, VERIFY, REPLAY, RESUME)


@dataclass
class RecoveryReport:
    """What a completed (or in-progress) recovery can prove it did."""

    stages_completed: List[str] = field(default_factory=list)
    shards: int = 0
    records_verified: int = 0
    windows_verified: int = 0
    records_replayed: int = 0
    skipped_expired: int = 0
    journal_requeued: int = 0
    #: (shard_id, sn, reason) for records excluded from REPLAY because
    #: they cannot be verified *by construction* (HMAC-only witnessing)
    #: — re-ingested from the journal, never imported unverified.
    unverifiable: List[Tuple[int, int, str]] = field(default_factory=list)
    #: old packed locator -> new packed locator, for every record that
    #: survived into the new site (REPLAY imports + RESUME re-commits).
    locator_mapping: Dict[str, str] = field(default_factory=dict)
    #: tag -> receipt for journal entries that re-committed under their
    #: original correlation tags (deferred tickets surviving the site).
    tagged_receipts: Dict[object, ShardedWriteReceipt] = (
        field(default_factory=dict))
    transfer_seconds: float = 0.0
    rto_seconds: float = 0.0

    @property
    def complete(self) -> bool:
        return list(RecoveryStage.ORDER) == self.stages_completed


class SiteRecovery:
    """One staged recovery pass: replica + surviving keys → live site.

    *replica* is the standby's untrusted artifact store; *store* the
    freshly provisioned (empty) :class:`ShardedWormStore` being rebuilt
    — its shard count must cover every shard the replica holds; *ca*
    the certificate authority both sites trust.  Drive with
    :meth:`run` (all stages) or :meth:`step` (one stage at a time; the
    chaos tests crash between steps and resume from
    :meth:`checkpoint`).
    """

    #: Tag prefix for journal entries re-submitted without a caller tag.
    RECOVERY_TAG = "__recovery__"

    def __init__(self, replica: ReplicaSite, store: ShardedWormStore,
                 ca: CertificateAuthority,
                 link_bandwidth: float = 50e6,
                 obs: Optional[TelemetryBus] = None,
                 checkpoint: Optional[Dict[str, Any]] = None) -> None:
        if link_bandwidth <= 0:
            raise ValueError("link bandwidth must be positive")
        self.replica = replica
        self.store = store
        self.ca = ca
        self.link_bandwidth = link_bandwidth
        self.obs = obs if obs is not None else store.obs
        declare_recovery_metrics(self.obs)
        ckpt = dict(checkpoint) if checkpoint else {}
        self._completed: List[str] = list(ckpt.get("completed", []))
        self._replayed_shards: Dict[str, bool] = dict(
            ckpt.get("replayed_shards", {}))
        self._mapping: Dict[str, str] = dict(ckpt.get("locator_mapping", {}))
        self._counts: Dict[str, float] = dict(ckpt.get("counts", {}))
        self._unverifiable: List[Tuple[int, int, str]] = [
            (int(s), int(sn), str(r))
            for s, sn, r in ckpt.get("unverifiable", [])]
        # Rebuilt lazily, never checkpointed: the replica re-materializes.
        self._images: Optional[Dict[int, Dict[str, Any]]] = None
        self._trusted: Optional[Dict[str, Tuple[object, str]]] = None
        self._tagged_receipts: Dict[object, ShardedWriteReceipt] = {}

    # -- progress & checkpointing ------------------------------------------------

    @property
    def stage(self) -> str:
        """The next stage to run (``done`` when recovery is complete)."""
        for name in RecoveryStage.ORDER:
            if name not in self._completed:
                return name
        return RecoveryStage.DONE

    def checkpoint(self) -> Dict[str, Any]:
        """JSON-able progress state: persist it, resume from it.

        Everything needed to continue after a crash mid-recovery:
        completed stages, per-shard REPLAY progress, the locator
        mapping built so far, and the accumulated counters.  The
        downloaded catalog images are deliberately *not* here — they
        re-materialize from the replica, which survives by premise.
        """
        return {
            "completed": list(self._completed),
            "replayed_shards": dict(self._replayed_shards),
            "locator_mapping": dict(self._mapping),
            "counts": dict(self._counts),
            "unverifiable": [list(u) for u in self._unverifiable],
        }

    def report(self) -> RecoveryReport:
        return RecoveryReport(
            stages_completed=list(self._completed),
            shards=len(self.replica.shard_ids),
            records_verified=int(self._counts.get("records_verified", 0)),
            windows_verified=int(self._counts.get("windows_verified", 0)),
            records_replayed=int(self._counts.get("records_replayed", 0)),
            skipped_expired=int(self._counts.get("skipped_expired", 0)),
            journal_requeued=int(self._counts.get("journal_requeued", 0)),
            unverifiable=list(self._unverifiable),
            locator_mapping=dict(self._mapping),
            tagged_receipts=dict(self._tagged_receipts),
            transfer_seconds=float(self._counts.get("transfer_seconds", 0.0)),
            rto_seconds=float(self._counts.get("rto_seconds", 0.0)),
        )

    # -- driving -------------------------------------------------------------------

    def step(self) -> str:
        """Run the next stage; returns its name (``done`` when finished)."""
        stage = self.stage
        if stage == RecoveryStage.DONE:
            return stage
        handlers = {
            RecoveryStage.DISCOVER: self._discover,
            RecoveryStage.DOWNLOAD: self._download,
            RecoveryStage.VERIFY: self._verify,
            RecoveryStage.REPLAY: self._replay,
            RecoveryStage.RESUME: self._resume,
        }
        cost_before = self._site_cost()
        handlers[stage]()
        self._counts["rto_seconds"] = (
            self._counts.get("rto_seconds", 0.0)
            + (self._site_cost() - cost_before))
        self._completed.append(stage)
        self.obs.inc("recovery.stages_completed")
        self.obs.event("recovery.stage", self.store.now, stage=stage,
                       **{k: v for k, v in self._counts.items()})
        return stage

    def run(self) -> RecoveryReport:
        """Run every remaining stage and return the final report."""
        while self.stage != RecoveryStage.DONE:
            self.step()
        return self.report()

    def _site_cost(self) -> float:
        return sum(self.store.cost_summary().values())

    # -- helpers -------------------------------------------------------------------

    def _count(self, key: str, n: float = 1.0) -> None:
        self._counts[key] = self._counts.get(key, 0.0) + n

    def _ensure_trusted(self) -> Dict[str, Tuple[object, str]]:
        """CA-check the dead site's certificates into a trust map."""
        if self._trusted is not None:
            return self._trusted
        certs = self.replica.source_certificates
        if not certs:
            raise RecoveryError(
                "replica holds no source certificates; the dead site's "
                "keys cannot be trusted without the CA chain")
        trusted: Dict[str, Tuple[object, str]] = {}
        for cert in certs:
            if not CertificateAuthority.verify_certificate(
                    cert, self.ca.root_public_key):
                raise TamperedError(
                    f"replicated certificate for role {cert.role!r} fails "
                    f"the CA check — the replica is presenting forged keys")
            trusted[cert.fingerprint] = (cert.public_key, cert.role)
        self._trusted = trusted
        return trusted

    def _ensure_images(self) -> Dict[int, Dict[str, Any]]:
        """Materialized per-shard catalog images (idempotent)."""
        if self._images is None:
            self._images = {
                shard_id: self.replica.materialize_shard(shard_id)
                for shard_id in self.replica.shard_ids}
        return self._images

    def _stage_signed(self, shard_id: int, signed: SignedEnvelope,
                      purpose: str, roles: Tuple[str, ...], label: str,
                      queue: List[Tuple[SignedEnvelope, Any, str]]) -> None:
        """Host-side checks for one authenticator; the SCPU check is deferred.

        Purpose and signer-trust checks run immediately (they need no
        crossing); the signature itself joins *queue* for the shard's
        single batched :meth:`_flush_verifies` crossing.
        """
        trusted = self._ensure_trusted()
        if signed.envelope.purpose != purpose:
            raise TamperedError(
                f"shard {shard_id} {label}: wrong envelope purpose "
                f"{signed.envelope.purpose!r} (expected {purpose!r})")
        signer = trusted.get(signed.key_fingerprint)
        if signer is None or signer[1] not in roles:
            raise TamperedError(
                f"shard {shard_id} {label}: signed by an untrusted key")
        queue.append((signed, signer[0],
                      f"shard {shard_id} {label}: signature verification "
                      f"failed"))

    def _flush_verifies(self, shard_id: int,
                        queue: List[Tuple[SignedEnvelope, Any, str]]) -> None:
        """One batched SCPU crossing checks every staged signature."""
        if not queue:
            return
        scpu_rt = self.store.shard(shard_id).scpu_rt
        results = scpu_rt.verify_envelope_batch(
            [(signed, key) for signed, key, _ in queue])
        for ok, (_, _, failure) in zip(results, queue):
            if not ok:
                raise TamperedError(failure)
        del queue[:]

    # -- stages ----------------------------------------------------------------------

    def _discover(self) -> None:
        """Inventory the replica and establish trust in the dead keys."""
        self._ensure_trusted()
        shard_ids = self.replica.shard_ids
        missing = [s for s in shard_ids if s >= self.store.shard_count]
        if missing:
            raise RecoveryError(
                f"replica holds shards {missing} but the new site only "
                f"provisions {self.store.shard_count}")
        self._count("shards_discovered",
                    len(shard_ids) - self._counts.get("shards_discovered", 0))
        self.store.begin_recovery()

    def _download(self) -> None:
        """Materialize the catalog images; charge the WAN transfer time."""
        images = self._ensure_images()
        total_bytes = 0
        for image in images.values():
            total_bytes += sum(len(b) for b in image["blocks"].values())
            total_bytes += 512 * (len(image["vrds"])
                                  + len(image["deletion_proofs"]))
        transfer = total_bytes / self.link_bandwidth
        self._counts["transfer_seconds"] = transfer
        self._counts["rto_seconds"] = (
            self._counts.get("rto_seconds", 0.0) + transfer)
        self._count("bytes_downloaded", total_bytes)
        self.store.advance_clocks(transfer)

    def _verify(self) -> None:
        """Check every replicated construct before any of it is imported.

        Structural checks (purpose, trust, SN fields, attr match, data
        hash) run host-side per item; every signature in a shard's
        image is staged and crosses into the new site's SCPU as one
        batched verify call — VERIFY pays one round trip per shard
        instead of one per envelope.
        """
        for shard_id, image in sorted(self._ensure_images().items()):  # wormlint: disable=W009 - the shard is the batch boundary: all staged signatures cross once in _flush_verifies
            queue: List[Tuple[SignedEnvelope, Any, str]] = []
            windows = self._stage_shard_windows(shard_id, image, queue)
            records = 0
            for sn in sorted(image["vrds"]):
                vrd = VirtualRecordDescriptor.from_dict(image["vrds"][sn])
                records += self._stage_record(shard_id, vrd,
                                              image["blocks"], queue)
            self._flush_verifies(shard_id, queue)
            if windows:
                self._count("windows_verified", windows)
                self.obs.inc("recovery.windows_verified", windows)
            if records:
                self._count("records_verified", records)
                self.obs.inc("recovery.records_verified", records)

    def _stage_shard_windows(self, shard_id: int, image: Dict[str, Any],
                             queue: List[Tuple[SignedEnvelope, Any, str]]
                             ) -> int:
        """Stage the shard's window authenticators: the O(1) trust skeleton."""
        if image["vrds"] and image["sn_current"] is None:
            raise RecoveryError(
                f"shard {shard_id}: replica has active records but no "
                f"signed SN_current authenticator")
        staged = 0
        pairs = (("sn_current", Purpose.SN_CURRENT, ("s",)),
                 ("sn_base", Purpose.SN_BASE, ("s",)))
        for key, purpose, roles in pairs:
            if image[key] is None:
                continue
            self._stage_signed(
                shard_id, SignedEnvelope.from_dict(image[key]),
                purpose, roles, key, queue)
            staged += 1
        for window in image["deletion_windows"]:
            self._stage_signed(
                shard_id, SignedEnvelope.from_dict(window["lower"]),
                Purpose.WINDOW_LOWER, ("s",), "deletion-window lower bound",
                queue)
            self._stage_signed(
                shard_id, SignedEnvelope.from_dict(window["upper"]),
                Purpose.WINDOW_UPPER, ("s",), "deletion-window upper bound",
                queue)
            staged += 2
        for sn, proof_data in sorted(image["deletion_proofs"].items()):
            proof = SignedEnvelope.from_dict(proof_data)
            self._stage_signed(shard_id, proof, Purpose.DELETION_PROOF,
                               ("d",), f"deletion proof SN {sn}", queue)
            if int(proof.field("sn")) != int(sn):
                raise TamperedError(
                    f"shard {shard_id}: deletion proof names SN "
                    f"{proof.field('sn')} but is filed under {sn}")
            staged += 1
        return staged

    def _stage_record(self, shard_id: int, vrd: VirtualRecordDescriptor,
                      blocks: Dict[str, bytes],
                      queue: List[Tuple[SignedEnvelope, Any, str]]) -> int:
        """Migration-grade checks for one replicated record (sigs deferred).

        Returns the number of records staged (0 for hmac-unverifiable
        ones) so the caller can count only what the batch actually
        covers.
        """
        shard = self.store.shard(shard_id)
        if vrd.metasig.scheme == "hmac" or vrd.datasig.scheme == "hmac":
            # Only the dead card could check its own HMAC: unverifiable
            # by construction, excluded from REPLAY, covered by RESUME.
            self._unverifiable.append(
                (shard_id, vrd.sn, "hmac-witnessed (burst mode); "
                                   "re-ingested from the journal"))
            return 0
        trusted = self._ensure_trusted()
        for signed, label in ((vrd.metasig, "metasig"),
                              (vrd.datasig, "datasig")):
            signer = trusted.get(signed.key_fingerprint)
            if signer is None or signer[1] not in ("s", "burst"):
                raise TamperedError(
                    f"shard {shard_id} SN {vrd.sn}: {label} signed by an "
                    f"untrusted key")
            queue.append((signed, signer[0],
                          f"shard {shard_id} SN {vrd.sn}: {label} signature "
                          f"verification failed"))
        if (vrd.metasig.field("sn") != vrd.sn
                or vrd.datasig.field("sn") != vrd.sn):
            raise TamperedError(
                f"shard {shard_id} SN {vrd.sn}: signatures name a "
                f"different SN")
        if vrd.metasig.field("attr") != vrd.attr.canonical_bytes():
            raise TamperedError(
                f"shard {shard_id} SN {vrd.sn}: attributes do not match "
                f"the metasig")
        missing = [rd.key for rd in vrd.rdl if rd.key not in blocks]
        if missing:
            raise TamperedError(
                f"shard {shard_id} SN {vrd.sn}: replica is missing payload "
                f"blocks {missing} for a record it advertises")
        hasher = ChainedHasher()
        for rd in vrd.rdl:
            hasher.update(blocks[rd.key])
        shard.scpu.meter.charge(
            "sha", shard.scpu.profile.sha_seconds(
                sum(rd.length for rd in vrd.rdl),
                shard.scpu.hash_block_size))
        if hasher.digest() != vrd.datasig.field("data_hash"):
            raise TamperedError(
                f"shard {shard_id} SN {vrd.sn}: record data does not "
                f"match the datasig")
        return 1

    def _replay(self) -> None:
        """Re-witness every verified record under the new site's SCPUs.

        All of a shard's verified records replay through one
        :meth:`~repro.core.worm.StrongWormStore.import_records` call, so
        hashing, SN issue, and witnessing cross the new SCPU once per
        shard rather than once per record.
        """
        unverifiable = {(s, sn) for s, sn, _ in self._unverifiable}
        for shard_id, image in sorted(self._ensure_images().items()):  # wormlint: disable=W009 - the shard is the batch boundary: each iteration makes one batched import_records crossing
            if self._replayed_shards.get(str(shard_id)):
                continue  # resumed recovery: this shard already landed
            sns = [sn for sn in sorted(image["vrds"])
                   if (shard_id, sn) not in unverifiable]
            vrds = [VirtualRecordDescriptor.from_dict(image["vrds"][sn])
                    for sn in sns]
            receipts = self.store.shard(shard_id).import_records(  # wormlint: disable=W007 - custody spans stages: _stage_record checked every (shard, sn) against its metasig/datasig before REPLAY can start, and unverifiable records are skipped above
                [(vrd.attr, [image["blocks"][rd.key] for rd in vrd.rdl])
                 for vrd in vrds])
            for sn, vrd, receipt in zip(sns, vrds, receipts):
                for index in range(len(vrd.rdl)):
                    old = RecordLocator(shard_id=shard_id, sn=sn,
                                        record_index=index).pack()
                    new = RecordLocator(shard_id=shard_id, sn=receipt.sn,
                                        record_index=index).pack()
                    self._mapping[old] = new
                self._count("records_replayed")
                self.obs.inc("recovery.records_replayed")
            self._count("skipped_expired",
                        len(image["deletion_proofs"]))
            self._replayed_shards[str(shard_id)] = True

    def _resume(self) -> None:
        """Drain the mirrored journal, then return the site to service.

        The zero-acknowledged-loss argument closes here: a write the
        primary acknowledged either (a) replayed from the verified
        catalog (its commit mark's locator is in the mapping), or (b)
        re-commits now from its mirrored journal entry.  Uncommitted
        entries — admitted writes whose group never flushed before the
        site died — re-commit too, under their original tags, so a
        deferred ticket issued by the dead site redeems on the new one.
        """
        for entry in self.replica.journal_ledger():
            if (entry.committed and entry.locator is not None
                    and entry.locator in self._mapping):
                continue
            if entry.tag is not None and not entry.committed:
                tag: object = entry.tag
            else:
                tag = (self.RECOVERY_TAG,
                       entry.locator if entry.locator is not None
                       else f"entry:{entry.entry_id}")
            self.store.submit(entry.payload, tag=tag, **entry.kwargs)
            self._count("journal_requeued")
            self.obs.inc("recovery.journal_requeued")
        self.store.flush()
        for tag, receipt in self.store.take_tagged_receipts().items():
            if (isinstance(tag, tuple) and len(tag) == 2
                    and tag[0] == self.RECOVERY_TAG):
                old = tag[1]
                if isinstance(old, str) and not old.startswith("entry:"):
                    self._mapping[old] = receipt.locator.pack()
            else:
                self._tagged_receipts[tag] = receipt
        self.store.resume_service()
