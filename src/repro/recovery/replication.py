"""Cross-site replication: primary → standby over a faulty WAN link.

The paper's trust model survives a *disk* adversary; this module makes
the reproduction survive a *site* adversary — fire, flood, a pulled
rack.  A :class:`ReplicationPump` continuously ships the primary
:class:`~repro.core.sharded.ShardedWormStore`'s durable artifacts to a
:class:`ReplicaSite` at another site, over a
:class:`ReplicationTransport` that injects the WAN's sins (loss, delay,
reordering, in-flight corruption) from a deterministic
:class:`~repro.faults.plan.FaultPlan`.

What ships, and with which durability promise:

* **Catalog stream (async, per shard)** — sealed window artifacts
  (``S_s(SN_current)``, ``S_s(SN_base)``, deletion windows), VRDs with
  their payload blocks, and deletion proofs, as incremental *deltas*
  plus periodic full *snapshots*.  Asynchronous: the pump retransmits
  until the replica acknowledges, and the replication **lag** is an
  observable histogram — but an ingest never waits on the WAN.
* **Journal stream (sync)** — every intent-journal operation, mirrored
  *before* the write is acknowledged, via
  :class:`ReplicatedIntentJournal`.  This is the compliance anchor: a
  write the client saw acknowledged has, at minimum, its journal entry
  at the standby, so losing the whole primary site loses **zero
  acknowledged writes** — the catalog tail that had not shipped yet is
  re-ingested from the mirrored journal during recovery's RESUME stage.

Everything at the replica is **untrusted**, exactly like the primary's
own disk: the standby proves nothing by itself.  Trust is re-established
during recovery by verifying every shipped construct against the
surviving SCPU-signed authenticators (see :mod:`repro.recovery.stages`).

All timing is virtual (the shared :class:`ManualClock` timeline); the
transport never touches the wall clock.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.errors import CrashError, ReplicationError
from repro.core.sharded import ShardedWormStore
from repro.crypto.keys import Certificate, CertificateAuthority
from repro.faults.plan import FaultKind, FaultPlan
from repro.obs.bus import NULL_BUS, TelemetryBus
from repro.storage.journal import (IntentJournal, JournalEntry, LedgerEntry,
                                   _tag_from_json, _tag_to_json)

__all__ = [
    "ReplicationArtifact",
    "ReplicationTransport",
    "ReplicaSite",
    "ReplicationPump",
    "ReplicatedIntentJournal",
    "declare_replication_metrics",
    "REPLICATION_COUNTERS",
    "LAG_BUCKETS",
]

#: Counter names the replication layer maintains (locked by
#: ``scripts/obs_schema.json`` once they appear in a checked snapshot).
REPLICATION_COUNTERS = (
    "replication.artifacts_shipped",
    "replication.artifacts_applied",
    "replication.retransmits",
    "replication.dropped",
    "replication.bytes_shipped",
    "replication.journal_ops",
    "replication.divergences",
)

#: Replication-lag histogram buckets (virtual seconds): sub-second for a
#: healthy LAN-ish link through the minutes a flapping WAN can impose.
LAG_BUCKETS = (0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0, 900.0)


def declare_replication_metrics(bus: TelemetryBus) -> None:
    """Pre-declare the replication counters and lag histogram on *bus*.

    Idempotent; shared by the pump, the journal mirror, and the
    divergence audit so a snapshot always carries the full metric set
    (the obs schema requires the names even when their value is zero).
    """
    if not bus.enabled:
        return
    for name in REPLICATION_COUNTERS:
        bus.declare_counter(name)
    bus.declare_histogram("replication.lag_seconds", buckets=LAG_BUCKETS)


@dataclass(frozen=True)
class ReplicationArtifact:
    """One unit shipped over the replication link.

    ``stream`` orders artifacts: the replica applies each stream's
    artifacts strictly by ``seq`` (buffering gaps), so reordering in
    flight cannot interleave a delta ahead of the snapshot it extends.
    Streams are ``catalog:<shard_id>`` (kinds ``snapshot``/``delta``),
    ``journal`` (mirrored intent-journal ops), and ``meta`` (the source
    site's CA-certified SCPU certificates).
    """

    stream: str
    seq: int
    kind: str
    created_at: float
    payload: Dict[str, Any]
    size_bytes: int

    def corrupted(self) -> "ReplicationArtifact":
        """A copy with one payload byte flipped (in-flight tampering).

        The flip targets the most damaging spot available: a record
        payload block if the artifact carries any, else the mirrored
        journal payload, else the raw payload dict is marked.  Recovery
        must *detect* this (TamperedError), never import it.
        """
        payload = dict(self.payload)
        blocks = payload.get("blocks")
        if blocks:
            blocks = dict(blocks)
            key = sorted(blocks)[0]
            data = bytes(blocks[key])
            blocks[key] = bytes([data[0] ^ 0xFF]) + data[1:] if data \
                else b"\xff"
            payload["blocks"] = blocks
        elif isinstance(payload.get("payload"), str) and payload["payload"]:
            text = payload["payload"]
            flipped = format(int(text[:2], 16) ^ 0xFF, "02x")
            payload["payload"] = flipped + text[2:]
        else:
            payload["__corrupted__"] = True
        return replace(self, payload=payload)


class ReplicationTransport:
    """The WAN between the sites, with deterministic fault injection.

    Asynchronous sends enter an in-flight queue and arrive
    ``link_latency`` (plus any injected delay) later; :meth:`deliver`
    releases everything whose arrival time has passed, in arrival
    order — so an injected latency spike on one artifact *reorders* it
    past its successors, which is exactly the case the replica's
    per-stream sequencing has to absorb.  A ``transient`` fault drops
    the artifact entirely (the pump retransmits); ``tamper`` corrupts
    it in flight (recovery must catch it); ``crash-before``/``-after``
    kill the sending host (:class:`CrashError`), modelling a site dying
    mid-ship.

    :meth:`send_sync` is the synchronous path the journal mirror uses:
    it retries transient drops up to *sync_attempts* times and fails
    loud with :class:`ReplicationError` when the link stays down —
    better to refuse an ingest than to acknowledge it unreplicated.
    """

    def __init__(self, plan: Optional[FaultPlan] = None,
                 link_latency: float = 0.05,
                 sync_attempts: int = 8,
                 obs: Optional[TelemetryBus] = None) -> None:
        if link_latency < 0:
            raise ValueError("link latency cannot be negative")
        if sync_attempts < 1:
            raise ValueError("the sync path needs at least one attempt")
        self.plan = plan
        self.link_latency = link_latency
        self.sync_attempts = sync_attempts
        self.obs = obs if obs is not None else NULL_BUS
        declare_replication_metrics(self.obs)
        self._in_flight: List[Tuple[float, int, ReplicationArtifact]] = []
        self._sends = 0
        self.sync_delay_seconds = 0.0

    @property
    def in_flight(self) -> int:
        return len(self._in_flight)

    def _advise(self, op: str, now: float):
        self._sends += 1
        if self.plan is None:
            return []
        return self.plan.advise(op, now, self._sends)

    def send(self, artifact: ReplicationArtifact, now: float) -> bool:
        """Queue *artifact* for async delivery; False when dropped."""
        actions = self._advise("replicate.send", now)
        delay = self.link_latency
        for action in actions:
            if action.kind == FaultKind.CRASH_BEFORE:
                raise CrashError("site crashed before shipping an artifact")
        for action in actions:
            if action.kind == FaultKind.TRANSIENT:
                self.obs.inc("replication.dropped")
                return False
            if action.kind == FaultKind.LATENCY:
                delay += action.seconds
            if action.kind == FaultKind.TAMPER:
                artifact = artifact.corrupted()
        heapq.heappush(self._in_flight,
                       (now + delay, self._sends, artifact))
        for action in actions:
            if action.kind == FaultKind.CRASH_AFTER:
                raise CrashError("site crashed after shipping an artifact")
        return True

    def send_sync(self, artifact: ReplicationArtifact,
                  now: float) -> ReplicationArtifact:
        """Deliver *artifact* synchronously (journal mirror path).

        Returns the artifact as the wire delivered it — possibly
        corrupted by an injected tamper, which is *not* this layer's
        job to detect (the replica is untrusted storage; recovery
        verifies).  Raises :class:`ReplicationError` once transient
        drops exhaust the attempt budget.
        """
        for _ in range(self.sync_attempts):
            actions = self._advise("replicate.sync", now)
            dropped = False
            for action in actions:
                if action.kind == FaultKind.TRANSIENT:
                    dropped = True
                elif action.kind == FaultKind.LATENCY:
                    self.sync_delay_seconds += action.seconds
                elif action.kind == FaultKind.TAMPER:
                    artifact = artifact.corrupted()
                elif action.kind in (FaultKind.CRASH_BEFORE,
                                     FaultKind.CRASH_AFTER):
                    raise CrashError(
                        "site crashed during a synchronous journal ship")
            if not dropped:
                self.sync_delay_seconds += self.link_latency
                return artifact
            self.obs.inc("replication.dropped")
        raise ReplicationError(
            f"replication link down: journal mirror failed "
            f"{self.sync_attempts} consecutive attempts")

    def deliver(self, now: float) -> List[ReplicationArtifact]:
        """Everything that has arrived by *now*, in arrival order."""
        arrived: List[ReplicationArtifact] = []
        while self._in_flight and self._in_flight[0][0] <= now:
            arrived.append(heapq.heappop(self._in_flight)[2])
        return arrived


class _ShardReplica:
    """The replicated catalog of one shard, as applied artifacts."""

    def __init__(self) -> None:
        # Applied catalog payloads in stream order; a snapshot resets
        # the materialization basis, deltas extend it.
        self.history: List[Dict[str, Any]] = []

    def apply(self, payload: Dict[str, Any]) -> None:
        if payload.get("kind") == "snapshot":
            # Earlier history is subsumed; drop it (the storage saving
            # periodic snapshots exist for).
            self.history = [payload]
        else:
            self.history.append(payload)


class ReplicaSite:
    """The standby site's artifact store — durable, ordered, untrusted.

    Applies incoming artifacts per stream in strict ``seq`` order,
    buffering gaps (the transport reorders); :meth:`ack` exposes each
    stream's contiguous frontier for the pump's retransmission logic.
    Holds the replicated per-shard catalogs, the mirrored journal ops,
    and the source site's certificates.  None of it is trusted: the
    recovery VERIFY stage checks every construct against the surviving
    SCPU authenticators before a byte of it is re-imported.
    """

    def __init__(self) -> None:
        self._frontier: Dict[str, int] = {}
        self._buffered: Dict[str, Dict[int, ReplicationArtifact]] = {}
        self._shards: Dict[int, _ShardReplica] = {}
        self._journal_ops: List[Dict[str, Any]] = []
        self.source_certificates: Tuple[Certificate, ...] = ()
        self.applied_count = 0

    # -- ingest ---------------------------------------------------------------

    def apply(self, artifact: ReplicationArtifact) -> int:
        """Apply *artifact* (and any now-contiguous buffered successors).

        Returns how many artifacts were applied; duplicates (seq at or
        below the frontier — retransmissions) apply zero and are
        harmless, matching the journal's at-least-once doctrine.
        """
        stream = artifact.stream
        frontier = self._frontier.get(stream, 0)
        if artifact.seq <= frontier:
            return 0
        buffered = self._buffered.setdefault(stream, {})
        buffered[artifact.seq] = artifact
        applied = 0
        while frontier + 1 in buffered:
            frontier += 1
            self._apply_one(buffered.pop(frontier))
            applied += 1
        self._frontier[stream] = frontier
        self.applied_count += applied
        return applied

    def _apply_one(self, artifact: ReplicationArtifact) -> None:
        payload = artifact.payload
        if artifact.stream == "journal":
            self._journal_ops.append(payload)
        elif artifact.stream == "meta":
            certs = payload.get("certificates", ())
            self.source_certificates = tuple(certs)
        else:
            shard_id = int(payload["shard_id"])
            self._shards.setdefault(shard_id, _ShardReplica()).apply(payload)

    def ack(self, stream: str) -> int:
        """The stream's contiguous frontier (highest seq fully applied)."""
        return self._frontier.get(stream, 0)

    # -- recovery-side views ----------------------------------------------------

    @property
    def shard_ids(self) -> Tuple[int, ...]:
        return tuple(sorted(self._shards))

    def materialize_shard(self, shard_id: int) -> Dict[str, Any]:
        """Fold one shard's snapshot + deltas into a catalog image.

        The image is what recovery downloads: active VRDs (as dicts),
        their payload blocks, deletion proofs, the window authenticator
        envelopes, and compacted deletion windows.  Purely mechanical —
        no verification happens here.
        """
        vrds: Dict[int, Dict[str, Any]] = {}
        blocks: Dict[str, bytes] = {}
        proofs: Dict[int, Dict[str, Any]] = {}
        image: Dict[str, Any] = {"vrds": vrds, "blocks": blocks,
                                 "deletion_proofs": proofs,
                                 "sn_current": None, "sn_base": None,
                                 "deletion_windows": []}
        replica = self._shards.get(shard_id)
        if replica is None:
            return image
        for payload in replica.history:
            if payload.get("kind") == "snapshot":
                vrdt = payload["vrdt"]
                vrds.clear()
                proofs.clear()
                for vrd_data in vrdt["active"]:
                    vrds[int(vrd_data["sn"])] = vrd_data
                for proof_data in vrdt.get("deletion_proofs", []):
                    sn = int(proof_data["envelope"]["fields"]["sn"])
                    proofs[sn] = proof_data
                image["sn_current"] = vrdt.get("sn_current")
                image["sn_base"] = vrdt.get("sn_base")
                image["deletion_windows"] = list(
                    vrdt.get("deletion_windows", []))
            else:
                for vrd_data in payload.get("vrds", []):
                    vrds[int(vrd_data["sn"])] = vrd_data
                for sn, proof_data in payload.get("expired", []):
                    vrds.pop(int(sn), None)
                    proofs[int(sn)] = proof_data
                if payload.get("sn_current") is not None:
                    image["sn_current"] = payload["sn_current"]
                if payload.get("sn_base") is not None:
                    image["sn_base"] = payload["sn_base"]
                if payload.get("deletion_windows") is not None:
                    image["deletion_windows"] = list(
                        payload["deletion_windows"])
            blocks.update(payload.get("blocks", {}))
        return image

    def journal_ledger(self) -> List[LedgerEntry]:
        """The mirrored journal, folded into ledger entries.

        This is recovery's zero-loss oracle: every write the primary
        acknowledged has an entry here (the mirror is synchronous), with
        ``committed``/``locator`` reflecting the last mirrored state.
        """
        entries: Dict[int, LedgerEntry] = {}
        order: List[int] = []
        for op in self._journal_ops:
            if op.get("op") == "append":
                entry = LedgerEntry(
                    entry_id=int(op["id"]),
                    payload=bytes.fromhex(op["payload"]),
                    kwargs=dict(op["kwargs"]),
                    tag=_tag_from_json(op.get("tag")))
                entries[entry.entry_id] = entry
                order.append(entry.entry_id)
            elif op.get("op") == "commit":
                ids = [int(i) for i in op.get("ids", [])]
                locs = op.get("locators") or [None] * len(ids)
                for entry_id, locator in zip(ids, locs):
                    prior = entries.get(entry_id)
                    if prior is not None:
                        entries[entry_id] = replace(prior, committed=True,
                                                    locator=locator)
        return [entries[i] for i in order]


class ReplicationPump:
    """Ships the primary's durable artifacts to the standby, forever.

    Drive :meth:`pump` from the ingest loop (each call is one
    replication cycle at the current virtual time): it delivers what
    the link has carried, reads the replica's ack frontiers,
    retransmits anything unacknowledged past ``retransmit_after``, and
    ships fresh per-shard deltas — every VRD (with payload blocks)
    above the shipped frontier, newly expired SNs with their deletion
    proofs, and the current window authenticators — plus a full
    snapshot every ``snapshot_interval`` virtual seconds so a recovery
    never replays an unbounded delta chain.

    Replication **lag** (apply time minus artifact creation time) is
    observed into the ``replication.lag_seconds`` histogram — the
    operational answer to "how much catalog would a site loss right
    now have to re-ingest from the journal?".
    """

    def __init__(self, store: ShardedWormStore,
                 transport: ReplicationTransport,
                 replica: ReplicaSite,
                 ca: Optional[CertificateAuthority] = None,
                 snapshot_interval: float = 3600.0,
                 retransmit_after: float = 1.0,
                 obs: Optional[TelemetryBus] = None) -> None:
        if snapshot_interval <= 0:
            raise ValueError("snapshot_interval must be positive")
        self.store = store
        self.transport = transport
        self.replica = replica
        self.ca = ca
        self.snapshot_interval = snapshot_interval
        self.retransmit_after = retransmit_after
        self.obs = obs if obs is not None else store.obs
        declare_replication_metrics(self.obs)
        self._seq: Dict[str, int] = {}
        # stream -> seq -> (artifact, last-send time); retransmission state.
        self._unacked: Dict[str, Dict[int, Tuple[ReplicationArtifact,
                                                 float]]] = {}
        self._shipped_sn: Dict[int, int] = {}
        self._shipped_expired: Dict[int, set] = {}
        self._last_snapshot: Dict[int, float] = {}
        self._last_window_sig: Dict[int, Optional[str]] = {}
        self._certs_shipped = False

    # -- plumbing ---------------------------------------------------------------

    def _next_seq(self, stream: str) -> int:
        self._seq[stream] = self._seq.get(stream, 0) + 1
        return self._seq[stream]

    def _ship(self, artifact: ReplicationArtifact, now: float) -> None:
        self._unacked.setdefault(artifact.stream, {})[artifact.seq] = (
            artifact, now)
        if self.transport.send(artifact, now):
            self.obs.inc("replication.artifacts_shipped")
            self.obs.inc("replication.bytes_shipped", artifact.size_bytes)

    def _read_block(self, shard, key: str, length: int) -> bytes:
        data = shard.retry.call("block_store.get", shard.blocks.get, key)
        shard.disk.read(length)
        return data

    # -- artifact builders --------------------------------------------------------

    def _delta_for(self, shard_id: int, now: float
                   ) -> Optional[ReplicationArtifact]:
        shard = self.store.shard(shard_id)
        frontier = self._shipped_sn.get(shard_id, 0)
        new_sns = [sn for sn in shard.vrdt.active_sns if sn > frontier]
        shipped_expired = self._shipped_expired.setdefault(shard_id, set())
        new_expired = [sn for sn in shard.vrdt.expired_sns
                       if sn not in shipped_expired]
        env = shard.vrdt.sn_current_envelope
        window_sig = env.signature.hex() if env is not None else None
        if (not new_sns and not new_expired
                and window_sig == self._last_window_sig.get(shard_id)):
            return None
        vrds: List[Dict[str, Any]] = []
        blocks: Dict[str, bytes] = {}
        size = 0
        for sn in new_sns:
            vrd = shard.vrdt.get_active(sn)
            if vrd is None:
                continue
            vrds.append(vrd.to_dict())
            for rd in vrd.rdl:
                if rd.key not in blocks:
                    blocks[rd.key] = self._read_block(shard, rd.key,
                                                      rd.length)
                    size += rd.length
        expired: List[Tuple[int, Dict[str, Any]]] = []
        for sn in new_expired:
            proof = shard.vrdt.get_deletion_proof(sn)
            if proof is not None:
                expired.append((sn, proof.to_dict()))
        payload: Dict[str, Any] = {
            "kind": "delta",
            "shard_id": shard_id,
            "vrds": vrds,
            "blocks": blocks,
            "expired": expired,
            "sn_current": env.to_dict() if env is not None else None,
            "sn_base": (shard.vrdt.sn_base_envelope.to_dict()
                        if shard.vrdt.sn_base_envelope is not None else None),
            "deletion_windows": [w.to_dict()
                                 for w in shard.vrdt.deletion_windows],
        }
        artifact = ReplicationArtifact(
            stream=f"catalog:{shard_id}",
            seq=self._next_seq(f"catalog:{shard_id}"),
            kind="delta", created_at=now, payload=payload,
            size_bytes=size + 512 * (len(vrds) + len(expired)) + 256)
        if new_sns:
            self._shipped_sn[shard_id] = max(new_sns)
        shipped_expired.update(new_expired)
        self._last_window_sig[shard_id] = window_sig
        return artifact

    def _snapshot_for(self, shard_id: int,
                      now: float) -> ReplicationArtifact:
        shard = self.store.shard(shard_id)
        snapshot = shard.vrdt.to_dict()
        blocks: Dict[str, bytes] = {}
        size = 0
        for sn in shard.vrdt.active_sns:
            vrd = shard.vrdt.get_active(sn)
            if vrd is None:
                continue
            for rd in vrd.rdl:
                if rd.key not in blocks:
                    blocks[rd.key] = self._read_block(shard, rd.key,
                                                      rd.length)
                    size += rd.length
        payload = {"kind": "snapshot", "shard_id": shard_id,
                   "vrdt": snapshot, "blocks": blocks}
        artifact = ReplicationArtifact(
            stream=f"catalog:{shard_id}",
            seq=self._next_seq(f"catalog:{shard_id}"),
            kind="snapshot", created_at=now, payload=payload,
            size_bytes=size + 512 * len(snapshot["active"]) + 1024)
        self._shipped_sn[shard_id] = max(shard.vrdt.active_sns, default=0)
        self._shipped_expired[shard_id] = set(shard.vrdt.expired_sns)
        env = shard.vrdt.sn_current_envelope
        self._last_window_sig[shard_id] = (env.signature.hex()
                                           if env is not None else None)
        self._last_snapshot[shard_id] = now
        return artifact

    # -- the cycle ---------------------------------------------------------------

    def pump(self, now: Optional[float] = None) -> Dict[str, int]:
        """One replication cycle; returns a small progress summary."""
        if now is None:
            now = self.store.now
        applied = 0
        for artifact in self.transport.deliver(now):
            count = self.replica.apply(artifact)
            applied += count
            if count:
                self.obs.inc("replication.artifacts_applied", count)
                self.obs.observe("replication.lag_seconds",
                                 max(0.0, now - artifact.created_at),
                                 buckets=LAG_BUCKETS)
        retransmitted = 0
        for stream, pending in self._unacked.items():
            frontier = self.replica.ack(stream)
            for seq in [s for s in pending if s <= frontier]:
                del pending[seq]
            for seq in sorted(pending):
                artifact, last_sent = pending[seq]
                if now - last_sent >= self.retransmit_after:
                    pending[seq] = (artifact, now)
                    if self.transport.send(artifact, now):
                        retransmitted += 1
                        self.obs.inc("replication.retransmits")
        shipped = 0
        if self.ca is not None and not self._certs_shipped:
            certs = tuple(self.store.certificates(self.ca))
            self._ship(ReplicationArtifact(
                stream="meta", seq=self._next_seq("meta"), kind="certs",
                created_at=now,
                payload={"kind": "certs", "certificates": certs},
                size_bytes=256 * len(certs)), now)
            self._certs_shipped = True
            shipped += 1
        for shard_id in range(self.store.shard_count):
            if (now - self._last_snapshot.get(shard_id, float("-inf"))
                    >= self.snapshot_interval):
                self._ship(self._snapshot_for(shard_id, now), now)
                shipped += 1
            else:
                delta = self._delta_for(shard_id, now)
                if delta is not None:
                    self._ship(delta, now)
                    shipped += 1
        return {"applied": applied, "shipped": shipped,
                "retransmitted": retransmitted,
                "in_flight": self.transport.in_flight}

    @property
    def unacked_count(self) -> int:
        """Artifacts shipped but not yet acknowledged by the replica."""
        return sum(len(p) for p in self._unacked.values())


class ReplicatedIntentJournal(IntentJournal):
    """An intent journal whose every operation is mirrored to a standby.

    Wraps any :class:`IntentJournal` backend; ``append`` and
    ``mark_committed`` first land locally, then ship synchronously over
    the transport's :meth:`~ReplicationTransport.send_sync` path and
    apply at the :class:`ReplicaSite` before returning — so the moment
    an ingest is acknowledged, its intent exists at both sites.  When
    the link is down past the transport's retry budget the operation
    raises :class:`~repro.core.errors.ReplicationError` instead of
    acknowledging an unreplicated write.

    ``mark_committed`` mirrors best-effort by design: the write it
    acknowledges is already replicated (its append was), so a lost
    commit mark merely costs a duplicate re-ingest at recovery —
    at-least-once, never at-most-once.
    """

    def __init__(self, inner: IntentJournal,
                 transport: ReplicationTransport,
                 replica: ReplicaSite,
                 clock: Optional[Any] = None,
                 obs: Optional[TelemetryBus] = None) -> None:
        self.inner = inner
        self.transport = transport
        self.replica = replica
        self._clock = clock
        self.obs = obs if obs is not None else NULL_BUS
        declare_replication_metrics(self.obs)
        self._seq = 0

    def _now(self) -> float:
        if self._clock is None:
            return 0.0
        now = self._clock.now
        return now() if callable(now) else float(now)

    def _mirror(self, op: Dict[str, Any], size: int) -> None:
        self._seq += 1
        now = self._now()
        artifact = ReplicationArtifact(
            stream="journal", seq=self._seq, kind="journal",
            created_at=now, payload=op, size_bytes=size)
        delivered = self.transport.send_sync(artifact, now)
        self.replica.apply(delivered)
        self.obs.inc("replication.journal_ops")
        self.obs.inc("replication.bytes_shipped", size)

    # -- IntentJournal surface ---------------------------------------------------

    def append(self, payload: bytes, kwargs: Dict[str, Any],
               tag: Optional[object] = None) -> int:
        entry_id = self.inner.append(payload, kwargs, tag=tag)
        op: Dict[str, Any] = {"op": "append", "id": entry_id,
                              "payload": bytes(payload).hex(),
                              "kwargs": dict(kwargs)}
        if tag is not None:
            op["tag"] = _tag_to_json(tag)
        self._mirror(op, len(payload) + 128)
        return entry_id

    def mark_committed(self, entry_ids: Iterable[int],
                       locators: Optional[Sequence[str]] = None) -> None:
        ids = [int(i) for i in entry_ids]
        self.inner.mark_committed(ids, locators)
        if not ids:
            return
        op: Dict[str, Any] = {"op": "commit", "ids": ids}
        if locators is not None:
            op["locators"] = list(locators)
        self._mirror(op, 32 * len(ids))

    def replay(self) -> List[JournalEntry]:
        return self.inner.replay()

    def pending_count(self) -> int:
        return self.inner.pending_count()

    def ledger(self) -> List[LedgerEntry]:
        return self.inner.ledger()
