"""Cross-site replication and verified disaster recovery.

Two halves, one compliance story:

* :mod:`repro.recovery.replication` — a :class:`ReplicationPump`
  continuously ships the primary site's sealed windows, catalog
  snapshots/deltas, and (synchronously) its intent journal to an
  untrusted :class:`ReplicaSite` over a fault-injectable
  :class:`ReplicationTransport`.
* :mod:`repro.recovery.stages` — :class:`SiteRecovery` rebuilds a dead
  site from that replica through explicit, resumable stages
  (DISCOVER → DOWNLOAD → VERIFY → REPLAY → RESUME), verifying every
  construct against the dead site's CA-certified SCPU keys before a
  byte is re-imported, and raising
  :class:`~repro.core.errors.TamperedError` terminally on any mismatch.

The replica is exactly as untrusted as the primary's own disk; the
recovery guarantee is the paper's guarantee, stretched across sites:
what the SCPU signed is what the new site serves, and what it never
signed never gets in.
"""

from repro.recovery.replication import (LAG_BUCKETS, REPLICATION_COUNTERS,
                                        ReplicatedIntentJournal,
                                        ReplicationArtifact,
                                        ReplicationPump,
                                        ReplicationTransport, ReplicaSite,
                                        declare_replication_metrics)
from repro.recovery.stages import (RECOVERY_COUNTERS, RecoveryReport,
                                   RecoveryStage, SiteRecovery,
                                   declare_recovery_metrics)

__all__ = [
    "ReplicationArtifact",
    "ReplicationTransport",
    "ReplicaSite",
    "ReplicationPump",
    "ReplicatedIntentJournal",
    "declare_replication_metrics",
    "REPLICATION_COUNTERS",
    "LAG_BUCKETS",
    "RecoveryStage",
    "RecoveryReport",
    "SiteRecovery",
    "declare_recovery_metrics",
    "RECOVERY_COUNTERS",
]
