"""Block-level WORM device — the paper's embedded deployment point."""

from repro.blockdev.device import BlockWriteError, WormBlockDevice

__all__ = ["BlockWriteError", "WormBlockDevice"]
