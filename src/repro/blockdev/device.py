"""Block-level WORM: the paper's second deployment point (§4.1).

"The mechanisms introduced here can be layered at arbitrary points in a
storage stack ... or inside a block-level storage device interface (e.g.,
in embedded scenarios without namespaces or indexing constraints)."

:class:`WormBlockDevice` presents a classic block-device interface —
fixed-size logical blocks addressed by LBA — where every block is
write-once: the first write to an LBA commits it as a WORM record (the
LBA is bound inside the signed payload, so remapping attacks fail), and
any rewrite attempt is refused at the interface and detectable past it.
Unwritten LBAs read as zeros, like a fresh disk.

Retention is device-wide (embedded scenarios have one governing policy —
e.g., a flight recorder or a lab instrument's raw-output store), and
TRIM-style discard is only honoured after retention, through the normal
Retention Monitor machinery.

This is deliberately the *namespace-free* deployment: no paths, no
versions — just LBAs, exactly as the paper frames the embedded case.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from repro.core.client import WormClient
from repro.core.errors import VerificationError, WormError
from repro.core.worm import StrongWormStore

__all__ = ["WormBlockDevice", "BlockWriteError"]

_LBA_HEADER = struct.Struct(">8sQ")  # magic + LBA
_MAGIC = b"WORMBLK1"


class BlockWriteError(WormError):
    """Raised on an attempt to rewrite a committed block."""


@dataclass(frozen=True)
class _BlockEntry:
    sn: int
    written_at: float


class WormBlockDevice:
    """A write-once block device over one Strong WORM store."""

    def __init__(self, store: StrongWormStore, block_size: int = 4096,
                 capacity_blocks: int = 1 << 20,
                 retention_seconds: Optional[float] = None,
                 policy: str = "default") -> None:
        if block_size < 64:
            raise ValueError("block size must be at least 64 bytes")
        if capacity_blocks < 1:
            raise ValueError("capacity must be positive")
        self._store = store
        self.block_size = block_size
        self.capacity_blocks = capacity_blocks
        self._policy = policy
        self._retention = retention_seconds
        self._lba_map: Dict[int, _BlockEntry] = {}

    # -- geometry ----------------------------------------------------------

    @property
    def capacity_bytes(self) -> int:
        return self.capacity_blocks * self.block_size

    @property
    def blocks_written(self) -> int:
        return len(self._lba_map)

    def _check_lba(self, lba: int) -> None:
        if not 0 <= lba < self.capacity_blocks:
            raise WormError(f"LBA {lba} out of range "
                            f"(capacity {self.capacity_blocks})")

    # -- payload framing ------------------------------------------------------

    def _frame(self, lba: int, data: bytes) -> bytes:
        """The committed payload: header binding the LBA, then the data.

        Binding the LBA into the signed bytes means a main CPU that serves
        block A's record for a read of block B produces a payload whose
        embedded LBA disagrees — caught without any trusted index.
        """
        return _LBA_HEADER.pack(_MAGIC, lba) + data

    def _unframe(self, lba: int, payload: bytes) -> bytes:
        if len(payload) < _LBA_HEADER.size:
            raise VerificationError("block payload too short for its header")
        magic, embedded_lba = _LBA_HEADER.unpack_from(payload)
        if magic != _MAGIC:
            raise VerificationError("block payload missing WORM framing")
        if embedded_lba != lba:
            raise VerificationError(
                f"block served for LBA {lba} is signed as LBA {embedded_lba} "
                "(remap detected)")
        return payload[_LBA_HEADER.size:]

    # -- the block interface ------------------------------------------------------

    def write_block(self, lba: int, data: bytes) -> int:
        """First-and-only write to *lba*; returns the backing SN.

        Short writes are zero-padded to the block size (like any sector
        write); long writes are refused.
        """
        self._check_lba(lba)
        if len(data) > self.block_size:
            raise WormError(f"data exceeds the {self.block_size}-byte block")
        if lba in self._lba_map:
            raise BlockWriteError(f"LBA {lba} is write-once and already written")
        padded = data.ljust(self.block_size, b"\x00")
        receipt = self._store.write(
            [self._frame(lba, padded)],
            policy=self._policy, retention_seconds=self._retention)
        self._lba_map[lba] = _BlockEntry(sn=receipt.sn,
                                         written_at=self._store.now)
        return receipt.sn

    def read_block(self, lba: int) -> bytes:
        """Read one block; unwritten (or expired) LBAs read as zeros."""
        self._check_lba(lba)
        entry = self._lba_map.get(lba)
        if entry is None:
            return b"\x00" * self.block_size
        result = self._store.read(entry.sn)
        if result.status != "active":
            return b"\x00" * self.block_size  # expired + discarded
        return self._unframe(lba, result.records[0])

    def read_block_verified(self, client: WormClient, lba: int) -> bytes:
        """Read with full client verification of the backing record."""
        self._check_lba(lba)
        entry = self._lba_map.get(lba)
        if entry is None:
            return b"\x00" * self.block_size
        verified = client.verify_read(self._store.read(entry.sn), entry.sn)
        if verified.status != "active":
            return b"\x00" * self.block_size
        return self._unframe(lba, verified.data)

    def is_written(self, lba: int) -> bool:
        self._check_lba(lba)
        return lba in self._lba_map

    def written_lbas(self) -> Iterator[int]:
        return iter(sorted(self._lba_map))

    def sn_of(self, lba: int) -> Optional[int]:
        """The backing serial number of a written LBA (for audits)."""
        entry = self._lba_map.get(lba)
        return entry.sn if entry else None

    # -- ranged helpers ----------------------------------------------------------

    def write_range(self, start_lba: int, data: bytes) -> Tuple[int, ...]:
        """Write *data* across consecutive blocks from *start_lba*."""
        sns = []
        for offset in range(0, len(data), self.block_size):
            chunk = data[offset:offset + self.block_size]
            sns.append(self.write_block(start_lba + offset // self.block_size,
                                        chunk))
        return tuple(sns)

    def read_range(self, start_lba: int, nblocks: int) -> bytes:
        """Read *nblocks* consecutive blocks."""
        return b"".join(self.read_block(start_lba + i)
                        for i in range(nblocks))

    def discard_expired(self) -> int:
        """TRIM: release LBAs whose backing records have expired.

        Only retention-expired blocks are released (their slots become
        rewritable); the deletion proofs remain at the record layer.
        """
        released = []
        for lba, entry in list(self._lba_map.items()):
            if not self._store.vrdt.is_active(entry.sn):
                released.append(lba)
                del self._lba_map[lba]
        return len(released)
