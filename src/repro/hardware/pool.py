"""Multi-SCPU pools — §5: "results naturally scale if multiple SCPUs...".

A busy store can install several coprocessors on the PCI-X bus.  The
cards share the store's protocol keys (provisioned identically inside
each enclosure at deployment), so any card's signature verifies under the
one published certificate set.  What must stay *single-writer* is the
serial-number counter — SNs have to be system-wide unique, consecutive
and monotonic for the window scheme to work — so the pool designates
card 0 as the SN authority (counter bumps are microsecond NVRAM touches,
never the bottleneck) and round-robins the expensive work (signing,
hashing, verification) across all cards.

:class:`ScpuPool` implements the :class:`~repro.hardware.device.ScpuLike`
protocol — the same service surface as a single
:class:`~repro.hardware.scpu.SecureCoprocessor` — so
:class:`~repro.core.worm.StrongWormStore` can be constructed over a pool
unchanged; its aggregate :class:`~repro.hardware.device.OpMeter` views
let benchmarks attribute cost per card.  For queueing simulations, the
pool's size maps to ``TimedDevice(capacity=n)``.

The forwarding facade is *generated* (see ``_forward``) rather than
hand-written per method: one table says which protocol methods go to the
SN authority and which round-robin to a worker card.  No ``__getattr__``
is involved — every forwarder is a real attribute, so the surface stays
explicit, introspectable, and exactly as wide as :class:`ScpuLike`.

A tamper event on *any* card zeroizes that card only; the pool stays
operational on the survivors (the keys live in every enclosure), and the
event is visible via :attr:`tampered_cards` for the operator's incident
response.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.hardware.scpu import ScpuKeyring, SecureCoprocessor
from repro.hardware.tamper import TamperedError

__all__ = ["ScpuPool"]

#: Protocol methods served by the single SN-authority card (NVRAM state
#: and durable-key operations that must stay single-writer / consistent).
_AUTHORITY_METHODS = (
    "issue_serial_number",
    "issue_serial_numbers",
    "advance_sn_base",
    "sign_sn_base",
    "sign_migration_manifest",
    "public_keys",
    "certify_with",
    "_keys_or_die",
    # Authenticated-set backend state (Merkle frontier, accumulator
    # trapdoors) is NVRAM-like single-writer state: it lives on the
    # authority card alongside the SN counter it is correlated with.
    "sign_merkle_root",
    "accumulator_bootstrap",
    "accumulator_add",
    "accumulator_remove",
    "accumulator_witness",
    "accumulator_sign_value",
)

#: Protocol methods round-robined across live cards (the expensive
#: signing / hashing / verification work the pool exists to parallelize).
_WORKER_METHODS = (
    "hash_record_data",
    "hash_record_data_batch",
    "verify_deferred_hash",
    "witness_write",
    "witness_write_batch",
    "strengthen",
    "strengthen_batch",
    "verify_own_hmac",
    "verify_envelope",
    "verify_envelope_batch",
    "resign_metadata",
    "make_deletion_proof",
    "compact_deletion_window",
    "sign_sn_current",
    "verify_regulator_credential",
)

#: Read-only attributes forwarded to the authority card.
_AUTHORITY_PROPERTIES = (
    "now", "clock", "profile", "hash_block_size", "tamper", "meter",
    "current_serial_number", "sn_base",
)


class ScpuPool:
    """N secure coprocessors sharing one keyring and one SN authority."""

    def __init__(self, cards: Sequence[SecureCoprocessor]) -> None:
        if not cards:
            raise ValueError("a pool needs at least one card")
        fingerprints = {
            card._keys_or_die().s_key.fingerprint for card in cards
        }
        if len(fingerprints) != 1:
            raise ValueError("pool cards must share one provisioned keyring")
        self._cards = list(cards)
        self._next = 0

    @classmethod
    def build(cls, size: int, keyring: Optional[ScpuKeyring] = None,
              clock: Optional[object] = None, **scpu_kwargs) -> "ScpuPool":
        """Provision *size* cards with one shared keyring and clock."""
        if keyring is None:
            keyring = ScpuKeyring.generate()
        cards = [SecureCoprocessor(keyring=keyring, clock=clock, **scpu_kwargs)
                 for _ in range(size)]
        return cls(cards)

    # -- topology ------------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self._cards)

    @property
    def cards(self) -> Tuple[SecureCoprocessor, ...]:
        return tuple(self._cards)

    @property
    def tampered_cards(self) -> List[int]:
        """Indices of cards whose enclosures have been breached."""
        return [i for i, card in enumerate(self._cards) if card.tamper.tripped]

    def _authority(self) -> SecureCoprocessor:
        """The SN-issuing card: the lowest-index live card."""
        for card in self._cards:
            if not card.tamper.tripped:
                return card
        raise TamperedError("every card in the pool has been destroyed")

    def _worker(self) -> SecureCoprocessor:
        """Round-robin over live cards for the expensive operations."""
        for _ in range(len(self._cards)):
            card = self._cards[self._next % len(self._cards)]
            self._next += 1
            if not card.tamper.tripped:
                return card
        raise TamperedError("every card in the pool has been destroyed")

    # -- pool-wide cost attribution -------------------------------------------

    def total_cost_seconds(self) -> float:
        """Aggregate virtual seconds across every card in the pool."""
        return sum(card.meter.total_seconds for card in self._cards)

    def per_card_cost_seconds(self) -> List[float]:
        return [card.meter.total_seconds for card in self._cards]

    # -- keyring rotation (lock-step across cards) -----------------------------

    def rotate_burst_key(self, ca=None, weak_bits: int = 512):
        """Rotate the shared burst key on every live card in lock-step."""
        # All cards share the keyring object, so one rotation suffices —
        # but each card must retire the old fingerprint locally.  Resolve
        # the authority once: each _authority() call re-scans for a live
        # card, and a mid-rotation trip could otherwise split the steps
        # across two different cards.
        authority = self._authority()
        keyring = authority._keys_or_die()
        old_fp = keyring.burst_key.fingerprint
        cert = authority.rotate_burst_key(ca, weak_bits=weak_bits)
        for card in self._cards:
            if card.tamper.tripped or card is authority:
                continue
            if old_fp not in card._retired_burst_fingerprints:
                card._retired_burst_fingerprints.append(old_fp)
        return cert


def _forward(names: Sequence[str], picker: str, doc: str) -> None:
    """Install explicit forwarders for *names* dispatching via *picker*."""
    for name in names:
        def forwarder(self, *args, _name=name, _picker=picker, **kwargs):
            card = getattr(self, _picker)()
            return getattr(card, _name)(*args, **kwargs)
        forwarder.__name__ = name
        forwarder.__qualname__ = f"ScpuPool.{name}"
        forwarder.__doc__ = (getattr(SecureCoprocessor, name).__doc__
                             or doc.format(name=name))
        setattr(ScpuPool, name, forwarder)


def _forward_properties(names: Sequence[str]) -> None:
    for name in names:
        def getter(self, _name=name):
            return getattr(self._authority(), _name)
        getter.__name__ = name
        getter.__qualname__ = f"ScpuPool.{name}"
        doc = None
        attr = getattr(SecureCoprocessor, name, None)
        if isinstance(attr, property) and attr.fget is not None:
            doc = attr.fget.__doc__
        setattr(ScpuPool, name, property(getter, doc=doc))


_forward(_AUTHORITY_METHODS, "_authority",
         "Forwarded to the pool's SN-authority card ({name}).")
_forward(_WORKER_METHODS, "_worker",
         "Round-robined to a live worker card ({name}).")
_forward_properties(_AUTHORITY_PROPERTIES)
