"""Multi-SCPU pools — §5: "results naturally scale if multiple SCPUs...".

A busy store can install several coprocessors on the PCI-X bus.  The
cards share the store's protocol keys (provisioned identically inside
each enclosure at deployment), so any card's signature verifies under the
one published certificate set.  What must stay *single-writer* is the
serial-number counter — SNs have to be system-wide unique, consecutive
and monotonic for the window scheme to work — so the pool designates
card 0 as the SN authority (counter bumps are microsecond NVRAM touches,
never the bottleneck) and round-robins the expensive work (signing,
hashing, verification) across all cards.

:class:`ScpuPool` exposes the same service surface as a single
:class:`~repro.hardware.scpu.SecureCoprocessor`, so
:class:`~repro.core.worm.StrongWormStore` can be constructed over a pool
unchanged; its aggregate :class:`~repro.hardware.device.OpMeter` views
let benchmarks attribute cost per card.  For queueing simulations, the
pool's size maps to ``TimedDevice(capacity=n)``.

A tamper event on *any* card zeroizes that card only; the pool stays
operational on the survivors (the keys live in every enclosure), and the
event is visible via :attr:`tampered_cards` for the operator's incident
response.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.crypto.envelope import SignedEnvelope
from repro.crypto.keys import Certificate, CertificateAuthority
from repro.hardware.scpu import ScpuKeyring, SecureCoprocessor, Strength
from repro.hardware.tamper import TamperedError

__all__ = ["ScpuPool"]


class ScpuPool:
    """N secure coprocessors sharing one keyring and one SN authority."""

    def __init__(self, cards: Sequence[SecureCoprocessor]) -> None:
        if not cards:
            raise ValueError("a pool needs at least one card")
        fingerprints = {
            card._keys_or_die().s_key.fingerprint for card in cards
        }
        if len(fingerprints) != 1:
            raise ValueError("pool cards must share one provisioned keyring")
        self._cards = list(cards)
        self._next = 0

    @classmethod
    def build(cls, size: int, keyring: Optional[ScpuKeyring] = None,
              clock: Optional[object] = None, **scpu_kwargs) -> "ScpuPool":
        """Provision *size* cards with one shared keyring and clock."""
        if keyring is None:
            keyring = ScpuKeyring.generate()
        cards = [SecureCoprocessor(keyring=keyring, clock=clock, **scpu_kwargs)
                 for _ in range(size)]
        return cls(cards)

    # -- topology ------------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self._cards)

    @property
    def cards(self) -> Tuple[SecureCoprocessor, ...]:
        return tuple(self._cards)

    @property
    def tampered_cards(self) -> List[int]:
        """Indices of cards whose enclosures have been breached."""
        return [i for i, card in enumerate(self._cards) if card.tamper.tripped]

    def _authority(self) -> SecureCoprocessor:
        """The SN-issuing card: the lowest-index live card."""
        for card in self._cards:
            if not card.tamper.tripped:
                return card
        raise TamperedError("every card in the pool has been destroyed")

    def _worker(self) -> SecureCoprocessor:
        """Round-robin over live cards for the expensive operations."""
        for _ in range(len(self._cards)):
            card = self._cards[self._next % len(self._cards)]
            self._next += 1
            if not card.tamper.tripped:
                return card
        raise TamperedError("every card in the pool has been destroyed")

    # -- the SecureCoprocessor service surface --------------------------------

    @property
    def now(self) -> float:
        return self._authority().now

    @property
    def clock(self):
        return self._authority().clock

    @property
    def profile(self):
        return self._authority().profile

    @property
    def hash_block_size(self) -> int:
        return self._authority().hash_block_size

    @property
    def tamper(self):
        """The authority card's tamper responder (pool-level trips are
        per-card; see :attr:`tampered_cards`)."""
        return self._authority().tamper

    @property
    def meter(self):
        """The authority card's meter — see :meth:`total_cost_seconds` for
        the pool aggregate."""
        return self._authority().meter

    def total_cost_seconds(self) -> float:
        """Aggregate virtual seconds across every card in the pool."""
        return sum(card.meter.total_seconds for card in self._cards)

    def per_card_cost_seconds(self) -> List[float]:
        return [card.meter.total_seconds for card in self._cards]

    # serial numbers: single authority
    def issue_serial_number(self) -> int:
        return self._authority().issue_serial_number()

    @property
    def current_serial_number(self) -> int:
        return self._authority().current_serial_number

    @property
    def sn_base(self) -> int:
        return self._authority().sn_base

    def advance_sn_base(self, new_base, proofs, windows=()):
        return self._authority().advance_sn_base(new_base, proofs, windows)

    # expensive work: round-robin
    def hash_record_data(self, chunks: Iterable[bytes]) -> bytes:
        return self._worker().hash_record_data(chunks)

    def verify_deferred_hash(self, chunks: Iterable[bytes], claimed: bytes) -> bool:
        return self._worker().verify_deferred_hash(chunks, claimed)

    def witness_write(self, sn: int, attr_bytes: bytes, data_hash: bytes,
                      strength: str = Strength.STRONG):
        return self._worker().witness_write(sn, attr_bytes, data_hash,
                                            strength=strength)

    def strengthen(self, signed: SignedEnvelope) -> SignedEnvelope:
        return self._worker().strengthen(signed)

    def verify_own_hmac(self, signed: SignedEnvelope) -> bool:
        return self._worker().verify_own_hmac(signed)

    def verify_envelope(self, signed: SignedEnvelope, public_key) -> bool:
        return self._worker().verify_envelope(signed, public_key)

    def resign_metadata(self, sn: int, attr_bytes: bytes) -> SignedEnvelope:
        return self._worker().resign_metadata(sn, attr_bytes)

    def make_deletion_proof(self, sn: int) -> SignedEnvelope:
        return self._worker().make_deletion_proof(sn)

    def compact_deletion_window(self, low_sn: int, high_sn: int, proofs):
        return self._worker().compact_deletion_window(low_sn, high_sn, proofs)

    def sign_sn_current(self, sn_current: int) -> SignedEnvelope:
        return self._worker().sign_sn_current(sn_current)

    def sign_sn_base(self, validity_seconds: float = 24 * 3600.0) -> SignedEnvelope:
        return self._authority().sign_sn_base(validity_seconds)

    def verify_regulator_credential(self, credential, regulator_key, sn,
                                    max_age_seconds: float = 24 * 3600.0) -> bool:
        return self._worker().verify_regulator_credential(
            credential, regulator_key, sn, max_age_seconds=max_age_seconds)

    def sign_migration_manifest(self, manifest_hash: bytes, record_count: int,
                                sn_base: int, sn_current: int) -> SignedEnvelope:
        return self._authority().sign_migration_manifest(
            manifest_hash, record_count, sn_base, sn_current)

    def public_keys(self) -> Dict[str, object]:
        return self._authority().public_keys()

    def certify_with(self, ca: CertificateAuthority) -> Dict[str, Certificate]:
        return self._authority().certify_with(ca)

    def rotate_burst_key(self, ca: Optional[CertificateAuthority] = None,
                         weak_bits: int = 512):
        """Rotate the shared burst key on every live card in lock-step."""
        cert = None
        # All cards share the keyring object, so one rotation suffices —
        # but each card must retire the old fingerprint locally.
        keyring = self._authority()._keys_or_die()
        old_fp = keyring.burst_key.fingerprint
        cert = self._authority().rotate_burst_key(ca, weak_bits=weak_bits)
        for card in self._cards:
            if card.tamper.tripped or card is self._authority():
                continue
            if old_fp not in card._retired_burst_fingerprints:
                card._retired_burst_fingerprints.append(old_fp)
        return cert

    def _keys_or_die(self):
        return self._authority()._keys_or_die()
