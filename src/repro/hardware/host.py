"""The untrusted main CPU (host) cost model.

The host (Table 2's P4 @ 3.4 GHz column) runs everything outside the
enclosure: VRDT maintenance, data placement, client request handling and
— in the §4.2.2 "slightly weaker" verify-later mode — data hashing on
behalf of the SCPU during bursts.  Like the SCPU it meters every
operation's virtual cost; unlike the SCPU it holds no secrets (anything
it stores, the insider can rewrite).
"""

from __future__ import annotations

from typing import Iterable

from repro.crypto.hashing import ChainedHasher
from repro.hardware.calibration import HOST_P4_3_4GHZ, CryptoProfile
from repro.hardware.device import OpMeter

__all__ = ["HostCPU"]

#: Fixed bookkeeping cost for VRDT table maintenance per operation — a few
#: microseconds of pointer/index work on a 3.4 GHz core.
_TABLE_TOUCH_SECONDS = 5e-6


class HostCPU:
    """The unsecured main processor: fast, plentiful, and untrusted."""

    def __init__(self, profile: CryptoProfile = HOST_P4_3_4GHZ,
                 hash_block_size: int = 64 * 1024) -> None:
        self.profile = profile
        self.meter = OpMeter()
        self.hash_block_size = hash_block_size

    def hash_record_data(self, chunks: Iterable[bytes]) -> bytes:
        """Hash record data at host speed (verify-later burst mode)."""
        hasher = ChainedHasher()
        total = 0
        for chunk in chunks:
            total += len(chunk)
            hasher.update(chunk)
        self.meter.charge("sha", self.profile.sha_seconds(total, self.hash_block_size))
        return hasher.digest()

    def table_touch(self, entries: int = 1) -> None:
        """Charge VRDT bookkeeping cost for *entries* table operations."""
        if entries < 0:
            raise ValueError("entry count must be non-negative")
        self.meter.charge("vrdt", _TABLE_TOUCH_SECONDS * entries)

    def verify_signature_cost(self, bits: int) -> None:
        """Charge one host-side RSA verification (client proof checking)."""
        self.meter.charge(f"rsa_verify_{bits}", self.profile.rsa_verify_seconds(bits))

    def memcpy_cost(self, nbytes: int) -> None:
        """Charge a host memory copy (staging data for DMA or clients)."""
        self.meter.charge("memcpy", self.profile.dma_seconds(nbytes))
