"""Device plumbing: operation metering and timed resource adapters.

The functional layer (crypto, WORM logic) and the timing layer (discrete-
event simulation) are deliberately decoupled:

* every functional device operation reports its *virtual cost* in seconds
  (from the Table 2 calibration) into an :class:`OpMeter`;
* simulation drivers replay those costs onto :class:`TimedDevice` objects
  — FIFO resources in a :class:`~repro.sim.engine.Simulator` — so
  queueing and contention determine throughput.

This keeps unit tests of protocol logic free of simulator machinery while
making benchmark timing a faithful queueing model rather than wall-clock
noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Tuple

from repro.sim.engine import Simulator

__all__ = ["OpMeter", "OpRecord", "TimedDevice"]


@dataclass(frozen=True)
class OpRecord:
    """One metered operation: its name and virtual-time cost in seconds."""

    name: str
    seconds: float


class OpMeter:
    """Accumulates the virtual cost of operations on one device.

    ``checkpoint()``/``delta()`` let callers measure the cost of a
    protocol step that spans several device operations (e.g., one WORM
    write = DMA + hash + two signatures).
    """

    def __init__(self) -> None:
        self._records: List[OpRecord] = []
        self._total = 0.0

    def charge(self, name: str, seconds: float) -> float:
        """Record an operation; returns *seconds* for call-site chaining."""
        if seconds < 0:
            raise ValueError(f"negative cost for {name}: {seconds}")
        self._records.append(OpRecord(name, seconds))
        self._total += seconds
        return seconds

    @property
    def total_seconds(self) -> float:
        """Total virtual seconds charged since construction."""
        return self._total

    @property
    def operation_count(self) -> int:
        return len(self._records)

    def checkpoint(self) -> float:
        """Opaque marker for :meth:`delta`."""
        return self._total

    def delta(self, checkpoint: float) -> float:
        """Virtual seconds charged since *checkpoint*."""
        return self._total - checkpoint

    def by_operation(self) -> Dict[str, float]:
        """Total seconds grouped by operation name."""
        grouped: Dict[str, float] = {}
        for record in self._records:
            grouped[record.name] = grouped.get(record.name, 0.0) + record.seconds
        return grouped

    def reset(self) -> None:
        """Clear all records (benchmark warm-up boundaries)."""
        self._records.clear()
        self._total = 0.0


class TimedDevice:
    """A device as a FIFO simulation resource.

    ``capacity`` > 1 models a pool (e.g., several SCPUs — the paper notes
    results "naturally scale if multiple SCPUs are available").
    """

    def __init__(self, sim: Simulator, name: str, capacity: int = 1) -> None:
        self.sim = sim
        self.name = name
        self.resource = sim.resource(capacity=capacity, name=name)

    @property
    def capacity(self) -> int:
        return self.resource.capacity

    def use(self, seconds: float) -> Generator:
        """Process-generator: hold one device slot for *seconds*.

        Zero-cost operations skip the queue entirely (no device involved).
        Usage: ``yield from device.use(cost)``.
        """
        if seconds < 0:
            raise ValueError(f"negative service time: {seconds}")
        if seconds == 0.0:
            return
        request = self.resource.request()
        yield request
        try:
            yield self.sim.timeout(seconds)
        finally:
            self.resource.release(request)

    def utilization(self, elapsed: float) -> float:
        """Busy fraction over *elapsed* virtual seconds."""
        return self.resource.utilization(elapsed)
