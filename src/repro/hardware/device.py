"""Device plumbing: operation metering and timed resource adapters.

The functional layer (crypto, WORM logic) and the timing layer (discrete-
event simulation) are deliberately decoupled:

* every functional device operation reports its *virtual cost* in seconds
  (from the Table 2 calibration) into an :class:`OpMeter`;
* simulation drivers replay those costs onto :class:`TimedDevice` objects
  — FIFO resources in a :class:`~repro.sim.engine.Simulator` — so
  queueing and contention determine throughput.

This keeps unit tests of protocol logic free of simulator machinery while
making benchmark timing a faithful queueing model rather than wall-clock
noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    Generator,
    Iterable,
    List,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

from repro.sim.engine import Simulator

if TYPE_CHECKING:  # annotation-only: keeps this module dependency-light
    from repro.crypto.envelope import SignedEnvelope
    from repro.crypto.keys import Certificate, CertificateAuthority

__all__ = ["OpMeter", "OpRecord", "ScpuLike", "TimedDevice"]


@dataclass(frozen=True)
class OpRecord:
    """One metered operation: its name and virtual-time cost in seconds."""

    name: str
    seconds: float


class OpMeter:
    """Accumulates the virtual cost of operations on one device.

    ``checkpoint()``/``delta()`` let callers measure the cost of a
    protocol step that spans several device operations (e.g., one WORM
    write = DMA + hash + two signatures).
    """

    def __init__(self) -> None:
        self._records: List[OpRecord] = []
        self._total = 0.0
        self._crossings = 0
        self._bytes_crossed = 0
        self._bus = None
        self._bus_device: Optional[str] = None

    def attach_telemetry(self, bus, device_name: str) -> None:
        """Mirror every future charge into *bus* as ``device.<name>.*``.

        *bus* is duck-typed (a :class:`~repro.obs.TelemetryBus`; this
        module stays obs-import-free).  Charges accumulated *before*
        attaching are seeded into the counters, so
        ``bus.counter(f"device.{name}.seconds")`` equals
        :attr:`total_seconds` exactly from the moment of attachment —
        the invariant the obs reconciliation checks against
        ``cost_summary``.
        """
        self._bus = bus
        self._bus_device = device_name
        bus.declare_counter(f"device.{device_name}.ops")
        bus.declare_counter(f"device.{device_name}.seconds")
        if self._records:
            bus.inc(f"device.{device_name}.ops", len(self._records))
            bus.inc(f"device.{device_name}.seconds", self._total)

    def charge(self, name: str, seconds: float) -> float:
        """Record an operation; returns *seconds* for call-site chaining."""
        if seconds < 0:
            raise ValueError(f"negative cost for {name}: {seconds}")
        self._records.append(OpRecord(name, seconds))
        self._total += seconds
        if self._bus is not None:
            self._bus.device_charge(self._bus_device, name, seconds)
        return seconds

    def crossing(self, nbytes: int = 0) -> None:
        """Count one host↔device boundary round trip carrying *nbytes*.

        Crossings are the amortization target of the batching API: the
        virtual-time cost model stays calibrated per operation, while
        this counter exposes how many separate trips across the trust
        boundary a protocol step required — the quantity batched entry
        points exist to shrink.
        """
        self._crossings += 1
        self._bytes_crossed += nbytes

    @property
    def crossings(self) -> int:
        """Host↔device round trips counted so far."""
        return self._crossings

    @property
    def bytes_crossed(self) -> int:
        """Payload bytes carried across the boundary so far."""
        return self._bytes_crossed

    @property
    def total_seconds(self) -> float:
        """Total virtual seconds charged since construction."""
        return self._total

    @property
    def operation_count(self) -> int:
        return len(self._records)

    def checkpoint(self) -> float:
        """Opaque marker for :meth:`delta`."""
        return self._total

    def delta(self, checkpoint: float) -> float:
        """Virtual seconds charged since *checkpoint*."""
        return self._total - checkpoint

    def by_operation(self) -> Dict[str, float]:
        """Total seconds grouped by operation name."""
        grouped: Dict[str, float] = {}
        for record in self._records:
            grouped[record.name] = grouped.get(record.name, 0.0) + record.seconds
        return grouped

    def reset(self) -> None:
        """Clear all records (benchmark warm-up boundaries)."""
        self._records.clear()
        self._total = 0.0
        self._crossings = 0
        self._bytes_crossed = 0


@runtime_checkable
class ScpuLike(Protocol):
    """The SCPU service surface the WORM layer programs against.

    Both a single :class:`~repro.hardware.scpu.SecureCoprocessor` and an
    :class:`~repro.hardware.pool.ScpuPool` satisfy this protocol, so a
    :class:`~repro.core.worm.StrongWormStore` (and therefore every layer
    above it) is constructed over "an SCPU" without caring whether that
    is one card or several sharing a keyring.  The protocol is the
    paper's trust-boundary interface: everything here runs inside (or is
    mediated by) the tamper-responding enclosure.

    ``@runtime_checkable`` only checks member *presence* on
    ``isinstance``; it is documentation plus a static-typing contract,
    not a behavioral guarantee.
    """

    # -- clock, calibration, metering --------------------------------------
    @property
    def now(self) -> float: ...

    @property
    def clock(self) -> object: ...

    @property
    def profile(self) -> object: ...

    @property
    def hash_block_size(self) -> int: ...

    @property
    def tamper(self) -> object: ...

    @property
    def meter(self) -> "OpMeter": ...

    # -- serial-number authority -------------------------------------------
    def issue_serial_number(self) -> int: ...

    def issue_serial_numbers(self, count: int) -> List[int]: ...

    @property
    def current_serial_number(self) -> int: ...

    @property
    def sn_base(self) -> int: ...

    def advance_sn_base(self, new_base: int,
                        proofs: Dict[int, "SignedEnvelope"],
                        windows: Iterable[Tuple["SignedEnvelope",
                                                "SignedEnvelope"]] = ()
                        ) -> "SignedEnvelope": ...

    # -- witnessing and signing ---------------------------------------------
    def hash_record_data(self, chunks: Iterable[bytes]) -> bytes: ...

    def verify_deferred_hash(self, chunks: Iterable[bytes],
                             claimed: bytes) -> bool: ...

    def witness_write(self, sn: int, attr_bytes: bytes, data_hash: bytes,
                      strength: str = ...
                      ) -> Tuple["SignedEnvelope", "SignedEnvelope"]: ...

    def strengthen(self, signed: "SignedEnvelope") -> "SignedEnvelope": ...

    def verify_own_hmac(self, signed: "SignedEnvelope") -> bool: ...

    def verify_envelope(self, signed: "SignedEnvelope",
                        public_key: object) -> bool: ...

    # -- batched entry points (one boundary crossing, per-item costs) --------
    def hash_record_data_batch(
            self, chunk_lists: Iterable[Iterable[bytes]]) -> List[bytes]: ...

    def witness_write_batch(
            self, items: Iterable[Tuple[int, bytes, bytes]],
            strength: str = ...
    ) -> List[Tuple["SignedEnvelope", "SignedEnvelope"]]: ...

    def strengthen_batch(
            self, signed_seq: Iterable["SignedEnvelope"]
    ) -> List["SignedEnvelope"]: ...

    def verify_envelope_batch(
            self, pairs: Iterable[Tuple["SignedEnvelope", object]]
    ) -> List[bool]: ...

    def resign_metadata(self, sn: int,
                        attr_bytes: bytes) -> "SignedEnvelope": ...

    def make_deletion_proof(self, sn: int) -> "SignedEnvelope": ...

    def compact_deletion_window(
            self, low_sn: int, high_sn: int,
            proofs: Dict[int, "SignedEnvelope"]
    ) -> Tuple["SignedEnvelope", "SignedEnvelope"]: ...

    def sign_sn_current(self, sn_current: int) -> "SignedEnvelope": ...

    def sign_sn_base(self,
                     validity_seconds: float = ...) -> "SignedEnvelope": ...

    def verify_regulator_credential(self, credential: "SignedEnvelope",
                                    regulator_key: object, sn: int,
                                    max_age_seconds: float = ...) -> bool: ...

    def sign_migration_manifest(self, manifest_hash: bytes, record_count: int,
                                sn_base: int,
                                sn_current: int) -> "SignedEnvelope": ...

    # -- pluggable authentication backends ------------------------------------
    def sign_merkle_root(self, root: bytes, size: int,
                         path_nodes: int) -> "SignedEnvelope": ...

    def accumulator_bootstrap(self, labels: Tuple[str, ...] = ...,
                              bits: Optional[int] = None) -> None: ...

    def accumulator_add(self, label: str, sn: int) -> int: ...

    def accumulator_remove(self, label: str, sn: int) -> int: ...

    def accumulator_witness(self, label: str, sn: int) -> int: ...

    def accumulator_sign_value(self, label: str) -> "SignedEnvelope": ...

    # -- key management / client trust bootstrap -----------------------------
    def public_keys(self) -> Dict[str, object]: ...

    def certify_with(self, ca: "CertificateAuthority"
                     ) -> Dict[str, "Certificate"]: ...

    def rotate_burst_key(self, ca: Optional["CertificateAuthority"] = None,
                         weak_bits: int = ...) -> Optional["Certificate"]: ...


class TimedDevice:
    """A device as a FIFO simulation resource.

    ``capacity`` > 1 models a pool (e.g., several SCPUs — the paper notes
    results "naturally scale if multiple SCPUs are available").
    """

    def __init__(self, sim: Simulator, name: str, capacity: int = 1) -> None:
        self.sim = sim
        self.name = name
        self.resource = sim.resource(capacity=capacity, name=name)

    @property
    def capacity(self) -> int:
        return self.resource.capacity

    def use(self, seconds: float) -> Generator:
        """Process-generator: hold one device slot for *seconds*.

        Zero-cost operations skip the queue entirely (no device involved).
        Usage: ``yield from device.use(cost)``.
        """
        if seconds < 0:
            raise ValueError(f"negative service time: {seconds}")
        if seconds == 0.0:
            return
        request = self.resource.request()
        yield request
        try:
            yield self.sim.timeout(seconds)
        finally:
            self.resource.release(request)

    def utilization(self, elapsed: float) -> float:
        """Busy fraction over *elapsed* virtual seconds."""
        return self.resource.utilization(elapsed)
