"""Hardware models: the SCPU, host CPU, and disk, with Table 2 calibration."""

from repro.hardware.calibration import (
    ENTERPRISE_DISK,
    HOST_P4_3_4GHZ,
    SCPU_IBM_4764,
    CryptoProfile,
    DiskProfile,
)
from repro.hardware.cca import CcaFacade
from repro.hardware.device import OpMeter, OpRecord, TimedDevice
from repro.hardware.disk import DiskDevice
from repro.hardware.host import HostCPU
from repro.hardware.pool import ScpuPool
from repro.hardware.scpu import ScpuKeyring, SecureCoprocessor, Strength
from repro.hardware.tamper import TamperedError, TamperResponder

__all__ = [
    "ENTERPRISE_DISK",
    "HOST_P4_3_4GHZ",
    "SCPU_IBM_4764",
    "CryptoProfile",
    "DiskProfile",
    "CcaFacade",
    "OpMeter",
    "OpRecord",
    "TimedDevice",
    "DiskDevice",
    "HostCPU",
    "ScpuPool",
    "ScpuKeyring",
    "SecureCoprocessor",
    "Strength",
    "TamperedError",
    "TamperResponder",
]
