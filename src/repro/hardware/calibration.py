"""Device performance calibration — the paper's Table 2, as a cost model.

All throughput results are produced in virtual time, with every crypto /
DMA / I/O operation charged a service time derived from the measurements
the paper reports for the IBM 4764-001 PCI-X cryptographic coprocessor
and a Pentium 4 @ 3.4 GHz running OpenSSL 0.9.7f:

==========  ============  ==============  ===========
Function    Context       IBM 4764        P4 @ 3.4GHz
==========  ============  ==============  ===========
RSA sig.    512 bits      4200/s (est.)   1315/s
            1024 bits     848/s           261/s
            2048 bits     316-470/s       43/s
SHA-1       1 KB blk.     1.42 MB/s       80 MB/s
            64 KB blk.    18.6 MB/s       120+ MB/s
DMA xfer    end-to-end    75-90 MB/s      1+ GB/s
==========  ============  ==============  ===========

Interpolation policy
--------------------
* RSA signing between anchor sizes: log-log linear interpolation; beyond
  the anchors, cubic scaling (modular multiplication is ~quadratic in the
  modulus size and the exponent adds another factor, so t(x) ≈ t(n)·(x/n)³
  — the paper's own §4.3 "how much faster a signature of x bits is"
  estimate).
* RSA verification: with e = 65537 a verify is ~34 modular squarings/
  multiplications versus ~1.5·bits for a CRT sign, so verify time is
  modelled as sign time scaled by ``34 / (1.5 * bits)``.
* SHA-1 between the 1 KB and 64 KB block anchors: log-block-size linear
  interpolation of the MB/s rate, clamped at the anchors.
* Ranges in the table (2048-bit: 316-470/s; DMA: 75-90 MB/s) use their
  midpoints.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

__all__ = [
    "CryptoProfile",
    "SCPU_IBM_4764",
    "HOST_P4_3_4GHZ",
    "DiskProfile",
    "ENTERPRISE_DISK",
]

_MB = 1024.0 * 1024.0


@dataclass(frozen=True)
class CryptoProfile:
    """Calibrated crypto/transfer performance of one processing element.

    ``rsa_sign_rates`` maps modulus bits to signatures/second;
    ``sha_rates`` maps hash block size (bytes) to MB/s;
    ``dma_rate_mb_s`` is the end-to-end transfer rate into the device.
    """

    name: str
    rsa_sign_rates: Mapping[int, float]
    sha_rates: Mapping[int, float]
    dma_rate_mb_s: float
    public_exponent_bits: int = 17  # e = 65537

    # -- RSA ---------------------------------------------------------------

    def rsa_sign_seconds(self, bits: int) -> float:
        """Service time of one RSA signature with a *bits*-bit modulus."""
        if bits <= 0:
            raise ValueError("modulus size must be positive")
        anchors = sorted(self.rsa_sign_rates)
        if bits in self.rsa_sign_rates:
            return 1.0 / self.rsa_sign_rates[bits]
        lo, hi = anchors[0], anchors[-1]
        if bits < lo:
            # Cubic scaling below the smallest anchor.
            return (1.0 / self.rsa_sign_rates[lo]) * (bits / lo) ** 3
        if bits > hi:
            return (1.0 / self.rsa_sign_rates[hi]) * (bits / hi) ** 3
        # Log-log interpolation between the surrounding anchors.
        below = max(a for a in anchors if a < bits)
        above = min(a for a in anchors if a > bits)
        t_below = 1.0 / self.rsa_sign_rates[below]
        t_above = 1.0 / self.rsa_sign_rates[above]
        frac = (math.log(bits) - math.log(below)) / (math.log(above) - math.log(below))
        return math.exp(math.log(t_below) * (1 - frac) + math.log(t_above) * frac)

    def rsa_sign_rate(self, bits: int) -> float:
        """Signatures/second for a *bits*-bit modulus."""
        return 1.0 / self.rsa_sign_seconds(bits)

    def rsa_verify_seconds(self, bits: int) -> float:
        """Service time of one RSA verification (short public exponent)."""
        ops_verify = 2.0 * self.public_exponent_bits
        ops_sign = 1.5 * bits
        return self.rsa_sign_seconds(bits) * (ops_verify / ops_sign)

    # -- hashing -------------------------------------------------------------

    def sha_rate_mb_s(self, block_size: int) -> float:
        """SHA throughput (MB/s) when hashing in *block_size*-byte chunks."""
        if block_size <= 0:
            raise ValueError("block size must be positive")
        anchors = sorted(self.sha_rates)
        if block_size <= anchors[0]:
            return self.sha_rates[anchors[0]]
        if block_size >= anchors[-1]:
            return self.sha_rates[anchors[-1]]
        below = max(a for a in anchors if a <= block_size)
        above = min(a for a in anchors if a > block_size)
        if below == block_size:
            return self.sha_rates[below]
        frac = ((math.log(block_size) - math.log(below))
                / (math.log(above) - math.log(below)))
        return self.sha_rates[below] * (1 - frac) + self.sha_rates[above] * frac

    def sha_seconds(self, nbytes: int, block_size: int = 64 * 1024) -> float:
        """Service time to hash *nbytes* of data in *block_size* chunks.

        Zero-byte inputs still pay one block's worth of setup (finalizing
        an empty hash is not free on the card).
        """
        if nbytes < 0:
            raise ValueError("byte count must be non-negative")
        rate = self.sha_rate_mb_s(block_size) * _MB
        effective = max(nbytes, 64)  # per-invocation floor
        return effective / rate

    # -- transfer --------------------------------------------------------------

    def dma_seconds(self, nbytes: int) -> float:
        """Service time to move *nbytes* across the device boundary."""
        if nbytes < 0:
            raise ValueError("byte count must be non-negative")
        return nbytes / (self.dma_rate_mb_s * _MB)


#: The IBM 4764-001 PCI-X cryptographic coprocessor (Table 2, col. 3).
SCPU_IBM_4764 = CryptoProfile(
    name="IBM 4764-001 PCI-X",
    rsa_sign_rates={512: 4200.0, 1024: 848.0, 2048: (316.0 + 470.0) / 2.0},
    sha_rates={1024: 1.42, 64 * 1024: 18.6},
    dma_rate_mb_s=(75.0 + 90.0) / 2.0,
)

#: The unsecured host CPU (Table 2, col. 4): P4 @ 3.4 GHz, OpenSSL 0.9.7f.
HOST_P4_3_4GHZ = CryptoProfile(
    name="P4 @ 3.4GHz / OpenSSL 0.9.7f",
    rsa_sign_rates={512: 1315.0, 1024: 261.0, 2048: 43.0},
    sha_rates={1024: 80.0, 64 * 1024: 120.0},
    dma_rate_mb_s=1024.0,  # "1+ GB/s" — host memory copies
)


@dataclass(frozen=True)
class DiskProfile:
    """Rotating-disk cost model (§5: 3-4 ms+ per individual block access)."""

    name: str
    seek_seconds: float
    rotational_seconds: float
    transfer_mb_s: float
    block_size: int = 4096

    def access_seconds(self, nbytes: int, sequential: bool = False) -> float:
        """Service time for one access of *nbytes*.

        Random accesses pay seek + rotational latency; sequential ones pay
        transfer only.  Zero-byte accesses (metadata touches) still pay
        positioning on the random path.
        """
        if nbytes < 0:
            raise ValueError("byte count must be non-negative")
        positioning = 0.0 if sequential else self.seek_seconds + self.rotational_seconds
        return positioning + nbytes / (self.transfer_mb_s * _MB)


#: High-speed enterprise disk, per the paper's §5 ("3-4ms+ latencies for
#: individual block disk access"): 15k RPM class.
ENTERPRISE_DISK = DiskProfile(
    name="enterprise 15k RPM",
    seek_seconds=0.0035,
    rotational_seconds=0.002,
    transfer_mb_s=80.0,
)
