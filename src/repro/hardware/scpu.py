"""The secure coprocessor (SCPU): trust anchor of the Strong WORM design.

Models the IBM 4764 of §2.2: a tamper-responding enclosure containing

* the two protocol signature keys — ``s`` (metasig/datasig/window bounds)
  and ``d`` (deletion proofs) — plus a rotating short-lived *burst* key
  and an HMAC key for the §4.3 deferred-strength optimizations,
* a battery-backed monotonic serial-number counter in NVRAM,
* an accurate internal clock protected by the enclosure,
* a crypto engine whose service times follow the Table 2 calibration
  (:mod:`repro.hardware.calibration`), metered on :class:`OpMeter`.

Everything on this object is *inside the trust boundary*: the adversary
model may destroy the device (tripping tamper response and zeroization)
but may never read or alter its state.  The untrusted main CPU interacts
with it only through the public service methods below — the "certified
logic" the paper runs inside the enclosure.

Signature strength levels (§4.3):

* ``"strong"`` — the durable ``s`` key (default 1024 bits),
* ``"weak"`` — the short-lived burst key (default 512 bits, security
  lifetime ~60 minutes), to be strengthened during idle periods,
* ``"hmac"`` — an HMAC tag (not client-verifiable until upgraded).
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.crypto.accumulator import TrapdoorAccumulator
from repro.crypto.envelope import Envelope, Purpose, SignedEnvelope
from repro.crypto.hashing import ChainedHasher
from repro.crypto.hmac_scheme import HmacScheme
from repro.crypto.keys import Certificate, CertificateAuthority, SigningKey
from repro.hardware.calibration import SCPU_IBM_4764, CryptoProfile
from repro.hardware.device import OpMeter
from repro.hardware.tamper import TamperResponder
from repro.sim.manual_clock import ManualClock

__all__ = ["SecureCoprocessor", "ScpuKeyring", "Strength", "WrappedKey"]


@dataclass(frozen=True)
class WrappedKey:
    """A data-encryption key wrapped under an SCPU epoch key.

    Lives in untrusted storage; only the SCPU holding the named epoch's
    key can unwrap it.  ``tag`` authenticates the wrap so a tampered
    wrapped key is rejected rather than silently unwrapping to garbage.
    """

    epoch_id: int
    nonce: bytes
    ciphertext: bytes
    tag: bytes

    def to_dict(self) -> Dict:
        return {"epoch_id": self.epoch_id, "nonce": self.nonce.hex(),
                "ciphertext": self.ciphertext.hex(), "tag": self.tag.hex()}

    @classmethod
    def from_dict(cls, data: Dict) -> "WrappedKey":
        return cls(epoch_id=int(data["epoch_id"]),
                   nonce=bytes.fromhex(data["nonce"]),
                   ciphertext=bytes.fromhex(data["ciphertext"]),
                   tag=bytes.fromhex(data["tag"]))

#: Tiny constant cost charged for counter/NVRAM touches (microseconds).
_NVRAM_TOUCH_SECONDS = 2e-6


class Strength:
    """Names of the witnessing strength levels."""

    STRONG = "strong"
    WEAK = "weak"
    HMAC = "hmac"


@dataclass
class ScpuKeyring:
    """The SCPU's private key material (generated inside the enclosure)."""

    s_key: SigningKey          # durable protocol signatures
    d_key: SigningKey          # deletion proofs
    burst_key: SigningKey      # short-lived deferred signatures
    hmac: HmacScheme           # burst-of-bursts witnessing

    @classmethod
    def generate(cls, strong_bits: int = 1024, weak_bits: int = 512) -> "ScpuKeyring":
        return cls(
            s_key=SigningKey.generate(strong_bits, role="s"),
            d_key=SigningKey.generate(strong_bits, role="d"),
            burst_key=SigningKey.generate(weak_bits, role="burst"),
            hmac=HmacScheme(),
        )


class SecureCoprocessor:
    """One IBM-4764-class secure coprocessor.

    Parameters
    ----------
    keyring:
        Pre-generated key material (tests pass small keys for speed); by
        default fresh 1024/512-bit keys are generated.
    clock:
        Any object with a ``.now`` property; defaults to a private
        :class:`ManualClock` at t=0.  Simulations pass the engine clock.
    profile:
        Performance calibration; defaults to the paper's IBM 4764 column.
    secure_memory_bytes:
        Capacity of scarce internal memory available to firmware state
        such as the VEXP expiration list (§4.2.2 "subject to secure
        storage space").
    """

    def __init__(self, keyring: Optional[ScpuKeyring] = None,
                 clock: Optional[object] = None,
                 profile: CryptoProfile = SCPU_IBM_4764,
                 secure_memory_bytes: int = 16 * 1024 * 1024,
                 hash_block_size: int = 64 * 1024) -> None:
        self._keys = keyring if keyring is not None else ScpuKeyring.generate()
        self.clock = clock if clock is not None else ManualClock()
        self.profile = profile
        self.meter = OpMeter()
        self.tamper = TamperResponder()
        self.secure_memory_bytes = secure_memory_bytes
        self.hash_block_size = hash_block_size
        self._sn_counter = 0
        self._sn_base = 1
        self._retired_burst_fingerprints: List[str] = []
        # Crypto-shredding epoch key: wraps per-record DEKs; rotating it
        # (and destroying the old one) unrecoverably shreds every DEK
        # that was not re-wrapped.  Lives only in battery-backed NVRAM.
        self._epoch_key = secrets.token_bytes(32)
        self._epoch_id = 1
        # Trapdoor accumulators for the "accumulator" authentication
        # scheme; provisioned lazily by accumulator_bootstrap().  The
        # trapdoors live only here, inside the enclosure (W001).
        self._accumulators: Dict[str, TrapdoorAccumulator] = {}
        self.tamper.register_zeroizer(self._zeroize)

    # -- trust boundary / lifecycle ---------------------------------------

    def _zeroize(self) -> None:
        """Destroy key material and counters (tamper response)."""
        self._keys = None  # type: ignore[assignment]
        self._sn_counter = -1
        self._sn_base = -1
        self._epoch_key = b""
        self._epoch_id = -1
        for acc in self._accumulators.values():
            acc.zeroize()
        self._accumulators.clear()

    @property
    def now(self) -> float:
        """The SCPU's internal tamper-protected clock."""
        return self.clock.now

    def _keys_or_die(self) -> ScpuKeyring:
        self.tamper.check()
        assert self._keys is not None
        return self._keys

    # -- public key export (for client trust bootstrap) --------------------

    def public_keys(self) -> Dict[str, object]:
        """Public halves of the protocol keys, for CA certification."""
        keys = self._keys_or_die()
        return {
            "s": keys.s_key.public,
            "d": keys.d_key.public,
            "burst": keys.burst_key.public,
        }

    def certify_with(self, ca: CertificateAuthority) -> Dict[str, Certificate]:
        """Have the regulatory CA certify this SCPU's public keys."""
        keys = self._keys_or_die()
        return {
            "s": ca.certify(keys.s_key.public, role="s", now=self.now),
            "d": ca.certify(keys.d_key.public, role="d", now=self.now),
            "burst": ca.certify(keys.burst_key.public, role="burst", now=self.now),
        }

    # -- internal signing helpers ------------------------------------------

    def _sign(self, key: SigningKey, purpose: str, fields: Dict) -> SignedEnvelope:
        envelope = Envelope(purpose=purpose, fields=fields, timestamp=self.now)
        self.meter.charge(f"rsa_sign_{key.bits}", self.profile.rsa_sign_seconds(key.bits))
        return key.sign_envelope(envelope)

    def _hmac_sign(self, purpose: str, fields: Dict) -> SignedEnvelope:
        keys = self._keys_or_die()
        envelope = Envelope(purpose=purpose, fields=fields, timestamp=self.now)
        message = envelope.canonical_bytes()
        self.meter.charge("hmac", self.profile.sha_seconds(len(message), block_size=1024))
        return SignedEnvelope(
            envelope=envelope,
            signature=keys.hmac.sign(message),
            key_fingerprint="hmac",
            key_bits=0,
            scheme="hmac",
        )

    def _witness_key(self, strength: str) -> SigningKey:
        keys = self._keys_or_die()
        if strength == Strength.STRONG:
            return keys.s_key
        if strength == Strength.WEAK:
            return keys.burst_key
        raise ValueError(f"unknown strength: {strength!r}")

    # -- serial numbers -------------------------------------------------------

    def issue_serial_number(self) -> int:
        """Allocate the next system-wide unique SN (monotonic, in NVRAM)."""
        self.tamper.check()
        self.meter.crossing()
        self.meter.charge("sn_counter", _NVRAM_TOUCH_SECONDS)
        self._sn_counter += 1
        return self._sn_counter

    def issue_serial_numbers(self, count: int) -> List[int]:
        """Allocate *count* consecutive SNs in one boundary crossing.

        Each allocation still touches NVRAM (the monotonic counter is
        per-SN), but a burst of writes pays for one host↔card round trip
        instead of *count* of them.
        """
        if count < 0:
            raise ValueError("cannot issue a negative number of SNs")
        self.tamper.check()
        self.meter.crossing()
        sns: List[int] = []
        for _ in range(count):
            self.meter.charge("sn_counter", _NVRAM_TOUCH_SECONDS)
            self._sn_counter += 1
            sns.append(self._sn_counter)
        return sns

    @property
    def current_serial_number(self) -> int:
        """Highest SN issued so far (0 before any issue)."""
        self.tamper.check()
        return self._sn_counter

    # -- data hashing (datasig input) ----------------------------------------

    def hash_record_data(self, chunks: Iterable[bytes]) -> bytes:
        """DMA record data into the enclosure and hash it (chained hash).

        Charges the DMA transfer (75-90 MB/s end-to-end) plus the SCPU's
        SHA throughput at the configured block size — the dominant write
        cost for large records, which is why Figure 1's curves fall as
        record size grows.
        """
        self.tamper.check()
        digest, total = self._hash_one(chunks)
        self.meter.crossing(total)
        return digest

    def _hash_one(self, chunks: Iterable[bytes]) -> Tuple[bytes, int]:
        hasher = ChainedHasher()
        total = 0
        for chunk in chunks:
            total += len(chunk)
            hasher.update(chunk)
        self.meter.charge("dma", self.profile.dma_seconds(total))
        self.meter.charge("sha", self.profile.sha_seconds(total, self.hash_block_size))
        return hasher.digest(), total

    def hash_record_data_batch(
            self, chunk_lists: Iterable[Iterable[bytes]]) -> List[bytes]:
        """Hash several records' data in one DMA setup / boundary crossing.

        Per-record DMA and SHA costs are charged identically to the
        singular call; only the round-trip count is amortized.
        """
        self.tamper.check()
        digests: List[bytes] = []
        total = 0
        for chunks in chunk_lists:
            digest, nbytes = self._hash_one(chunks)
            digests.append(digest)
            total += nbytes
        self.meter.crossing(total)
        return digests

    def verify_deferred_hash(self, chunks: Iterable[bytes], claimed: bytes) -> bool:
        """Idle-time check of a host-provided hash (§4.2.2 weaker model).

        During bursts the main CPU may be trusted to provide the data
        hash; the SCPU later reads the data itself and verifies.  Charges
        the same DMA + SHA cost as :meth:`hash_record_data`.
        """
        return self.hash_record_data(chunks) == claimed

    # -- write witnessing -------------------------------------------------------

    def witness_write(self, sn: int, attr_bytes: bytes, data_hash: bytes,
                      strength: str = Strength.STRONG
                      ) -> Tuple[SignedEnvelope, SignedEnvelope]:
        """Produce (metasig, datasig) for a new VRD (§4.2.2 Write).

        ``metasig`` = S(SN, attr); ``datasig`` = S(SN, Hash(data)); both
        carry the SCPU timestamp.  With ``strength="hmac"`` the envelopes
        are HMAC-tagged instead (not client-verifiable until upgraded).
        """
        self.tamper.check()
        self.meter.crossing(len(attr_bytes) + len(data_hash))
        return self._witness_one(sn, attr_bytes, data_hash, strength)

    def _witness_one(self, sn: int, attr_bytes: bytes, data_hash: bytes,
                     strength: str) -> Tuple[SignedEnvelope, SignedEnvelope]:
        meta_fields = {"sn": sn, "attr": attr_bytes}
        data_fields = {"sn": sn, "data_hash": data_hash}
        if strength == Strength.HMAC:
            return (self._hmac_sign(Purpose.METASIG, meta_fields),
                    self._hmac_sign(Purpose.DATASIG, data_fields))
        key = self._witness_key(strength)
        return (self._sign(key, Purpose.METASIG, meta_fields),
                self._sign(key, Purpose.DATASIG, data_fields))

    def witness_write_batch(
            self, items: Iterable[Tuple[int, bytes, bytes]],
            strength: str = Strength.STRONG
    ) -> List[Tuple[SignedEnvelope, SignedEnvelope]]:
        """Witness several writes in one boundary crossing (§4.3 bursts).

        *items* is an iterable of ``(sn, attr_bytes, data_hash)``.  Every
        record still pays its full signing cost — batching amortizes the
        round trip, not the cryptography.
        """
        self.tamper.check()
        items = list(items)
        self.meter.crossing(sum(len(a) + len(h) for _, a, h in items))
        return [self._witness_one(sn, attr_bytes, data_hash, strength)
                for sn, attr_bytes, data_hash in items]

    # -- deferred-strength upgrades (§4.3) ---------------------------------------

    def strengthen(self, signed: SignedEnvelope) -> SignedEnvelope:
        """Re-issue a weak/HMAC construct under the durable ``s`` key.

        The SCPU verifies its *own* prior construct first — a weak
        signature within lifetime, or an HMAC tag — then signs the same
        statement (purpose + fields) afresh with a current timestamp.
        Raises :class:`ValueError` if the prior construct does not check
        out (a tampered queue entry must never be laundered into a strong
        signature).
        """
        self.meter.crossing(len(signed.signature))
        return self._strengthen_one(signed)

    def strengthen_batch(
            self, signed_seq: Iterable[SignedEnvelope]) -> List[SignedEnvelope]:
        """Strengthen several constructs in one boundary crossing.

        Fail-fast: a construct that does not check out raises exactly as
        the singular call would, after the preceding items were already
        strengthened — callers that need per-item isolation submit
        per-record batches (e.g. one record's metasig + datasig).
        """
        signed_seq = list(signed_seq)
        self.meter.crossing(sum(len(s.signature) for s in signed_seq))
        return [self._strengthen_one(signed) for signed in signed_seq]

    def _strengthen_one(self, signed: SignedEnvelope) -> SignedEnvelope:
        keys = self._keys_or_die()
        message = signed.envelope.canonical_bytes()
        if signed.scheme == "hmac":
            self.meter.charge("hmac", self.profile.sha_seconds(len(message), block_size=1024))
            if not keys.hmac.verify(message, signed.signature):
                raise ValueError("HMAC verification failed during strengthening")
        else:
            if signed.key_fingerprint == keys.s_key.fingerprint:
                # Already strong — e.g. a metasig re-issued by lit_hold
                # while the record sat in the strengthening queue.  Verify
                # and return it unchanged (idempotent).
                self.meter.charge(
                    f"rsa_verify_{signed.key_bits}",
                    self.profile.rsa_verify_seconds(signed.key_bits),
                )
                if not keys.s_key.public.verify(message, signed.signature,
                                                hash_name=signed.hash_name):
                    raise ValueError("strong construct failed verification")
                return signed
            verify_key = None
            if signed.key_fingerprint == keys.burst_key.fingerprint:
                verify_key = keys.burst_key.public
            elif signed.key_fingerprint in self._retired_burst_fingerprints:
                raise ValueError("burst key already retired; construct too old")
            if verify_key is None:
                raise ValueError("unknown signing key in construct to strengthen")
            self.meter.charge(
                f"rsa_verify_{signed.key_bits}",
                self.profile.rsa_verify_seconds(signed.key_bits),
            )
            if not verify_key.verify(message, signed.signature,
                                     hash_name=signed.hash_name):
                raise ValueError("signature verification failed during strengthening")
        return self._sign(keys.s_key, signed.envelope.purpose,
                          dict(signed.envelope.fields))

    def verify_own_hmac(self, signed: SignedEnvelope) -> bool:
        """Check an HMAC tag this SCPU issued (night scan of burst writes)."""
        keys = self._keys_or_die()
        self.meter.crossing()
        message = signed.envelope.canonical_bytes()
        self.meter.charge("hmac", self.profile.sha_seconds(len(message), block_size=1024))
        return keys.hmac.verify(message, signed.signature)

    def rotate_burst_key(self, ca: Optional[CertificateAuthority] = None,
                         weak_bits: int = 512) -> Optional[Certificate]:
        """Retire the current burst key and generate a fresh one.

        Called periodically so no burst key is ever used beyond its
        security lifetime.  Returns the new key's certificate when a CA
        is provided.
        """
        keys = self._keys_or_die()
        self.meter.crossing()
        self._retired_burst_fingerprints.append(keys.burst_key.fingerprint)
        self.meter.charge("rsa_keygen", 0.5)  # card-side keygen, sub-second
        keys.burst_key = SigningKey.generate(weak_bits, role="burst")
        if ca is not None:
            return ca.certify(keys.burst_key.public, role="burst", now=self.now)
        return None

    # -- window / deletion constructs (§4.2.1) ----------------------------------

    def sign_sn_current(self, sn_current: int) -> SignedEnvelope:
        """S_s(SN_current) with timestamp — the upper window bound.

        Clients reject this construct once older than the freshness
        window; the SCPU refreshes it every few minutes even when idle.
        """
        self.meter.crossing()
        keys = self._keys_or_die()
        return self._sign(keys.s_key, Purpose.SN_CURRENT, {"sn_current": sn_current})

    @property
    def sn_base(self) -> int:
        """Lowest possibly-active SN, held in NVRAM; advances only with evidence."""
        self.tamper.check()
        return self._sn_base

    def sign_sn_base(self, validity_seconds: float = 24 * 3600.0) -> SignedEnvelope:
        """S_s(SN_base) with an expiration time (replay defence §4.2.1).

        Signs the NVRAM-resident base — the main CPU cannot choose the
        value, only request a fresh signature.  The expiry stops Mallory
        replaying an old (lower) base signature to dodge proper expiry.
        """
        self.meter.crossing()
        keys = self._keys_or_die()
        expires_at = self.now + validity_seconds
        return self._sign(keys.s_key, Purpose.SN_BASE,
                          {"sn_base": self._sn_base,
                           "expires_at_us": int(expires_at * 1e6)})

    def _verify_own_deletion_proof(self, proof: SignedEnvelope, sn: int) -> bool:
        """Check an S_d(sn) the main CPU presents as expiry evidence."""
        keys = self._keys_or_die()
        if proof.envelope.purpose != Purpose.DELETION_PROOF:
            return False
        if proof.envelope.fields.get("sn") != sn:
            return False
        self.meter.charge(
            f"rsa_verify_{keys.d_key.bits}",
            self.profile.rsa_verify_seconds(keys.d_key.bits),
        )
        return keys.d_key.public.verify(proof.envelope.canonical_bytes(),
                                        proof.signature,
                                        hash_name=proof.hash_name)

    def _verify_own_window(self, lower: SignedEnvelope, upper: SignedEnvelope) -> bool:
        """Check a (lower, upper) deletion-window pair this SCPU issued."""
        keys = self._keys_or_die()
        if lower.envelope.purpose != Purpose.WINDOW_LOWER:
            return False
        if upper.envelope.purpose != Purpose.WINDOW_UPPER:
            return False
        if lower.envelope.fields.get("window_id") != upper.envelope.fields.get("window_id"):
            return False
        for env in (lower, upper):
            self.meter.charge(
                f"rsa_verify_{keys.s_key.bits}",
                self.profile.rsa_verify_seconds(keys.s_key.bits),
            )
            if not keys.s_key.public.verify(env.envelope.canonical_bytes(),
                                            env.signature, hash_name=env.hash_name):
                return False
        return True

    def advance_sn_base(self, new_base: int,
                        proofs: Dict[int, SignedEnvelope],
                        windows: Iterable[Tuple[SignedEnvelope, SignedEnvelope]] = ()
                        ) -> SignedEnvelope:
        """Advance the NVRAM base after verifying expiry evidence (§4.2.1).

        Every SN in ``[current base, new_base)`` must be covered by a
        valid deletion proof in *proofs* or by one of the verified
        deletion *windows*.  Without this check a malicious main CPU
        could advance the base over still-active records — the exact
        "rewriting history" Theorem 2 rules out.
        """
        self.tamper.check()
        self.meter.crossing()
        if new_base <= self._sn_base:
            raise ValueError("base may only advance")
        if new_base > self._sn_counter + 1:
            raise ValueError("base cannot pass the allocation frontier")
        covered_ranges = []
        for lower, upper in windows:
            if self._verify_own_window(lower, upper):
                covered_ranges.append((int(lower.field("sn")), int(upper.field("sn"))))
        for sn in range(self._sn_base, new_base):
            if any(low <= sn <= high for low, high in covered_ranges):
                continue
            proof = proofs.get(sn)
            if proof is None or not self._verify_own_deletion_proof(proof, sn):
                raise ValueError(f"no valid expiry evidence for SN {sn}")
        self._sn_base = new_base
        self.meter.charge("sn_base_nvram", _NVRAM_TOUCH_SECONDS)
        return self.sign_sn_base()

    def compact_deletion_window(self, low_sn: int, high_sn: int,
                                proofs: Dict[int, SignedEnvelope]
                                ) -> Tuple[SignedEnvelope, SignedEnvelope]:
        """Sign bounds for a contiguous expired segment, after verification.

        The paper allows replacing "any contiguous VRDT segment of 3 or
        more expired VRs" with signed bounds; the SCPU first checks a
        valid deletion proof for every SN in the segment, so bounds can
        never be conjured over live data.
        """
        self.tamper.check()
        self.meter.crossing()
        if high_sn - low_sn + 1 < 3:
            raise ValueError("deletion windows need at least 3 expired VRs")
        for sn in range(low_sn, high_sn + 1):
            proof = proofs.get(sn)
            if proof is None or not self._verify_own_deletion_proof(proof, sn):
                raise ValueError(f"no valid deletion proof for SN {sn}")
        return self._sign_deletion_window(low_sn, high_sn)

    def _sign_deletion_window(self, low_sn: int, high_sn: int
                              ) -> Tuple[SignedEnvelope, SignedEnvelope]:
        """Signed lower/upper bounds for a contiguous expired-SN window.

        Both bounds carry the same random window ID so the main CPU
        cannot splice bounds from unrelated windows into an arbitrary
        "deleted" range (§4.2.1's correlation requirement).  Internal:
        the public entry point is :meth:`compact_deletion_window`, which
        verifies deletion proofs first.
        """
        keys = self._keys_or_die()
        if low_sn > high_sn:
            raise ValueError("deletion window bounds out of order")
        window_id = secrets.token_hex(16)
        lower = self._sign(keys.s_key, Purpose.WINDOW_LOWER,
                           {"sn": low_sn, "window_id": window_id})
        upper = self._sign(keys.s_key, Purpose.WINDOW_UPPER,
                           {"sn": high_sn, "window_id": window_id})
        return lower, upper

    def make_deletion_proof(self, sn: int) -> SignedEnvelope:
        """S_d(SN): the proof of rightful deletion stored in the VRDT."""
        self.meter.crossing()
        keys = self._keys_or_die()
        return self._sign(keys.d_key, Purpose.DELETION_PROOF, {"sn": sn})

    # -- pluggable authentication backends (DESIGN §12) --------------------------

    #: Serialized Merkle node size DMA'd into the enclosure per path hop
    #: (32-byte digest + position byte + 32-byte sibling), matching the
    #: baseline's cost model.
    _MERKLE_NODE_BYTES = 65

    def sign_merkle_root(self, root: bytes, size: int,
                         path_nodes: int) -> SignedEnvelope:
        """Verify-and-sign a Merkle root update (``merkle`` backend).

        Models in-enclosure incremental maintenance: the card DMAs the
        *path_nodes* authentication-path nodes for the touched leaf,
        re-hashes them, and signs the resulting root together with the
        tree size and the SN allocation frontier (the frontier backs
        never-allocated denials, replacing SN_current for this scheme).
        """
        keys = self._keys_or_die()
        self.meter.crossing()
        nbytes = max(1, path_nodes) * self._MERKLE_NODE_BYTES
        self.meter.charge("merkle_path_dma", self.profile.dma_seconds(nbytes))
        self.meter.charge("merkle_path_sha",
                          self.profile.sha_seconds(nbytes, block_size=1024))
        return self._sign(keys.s_key, Purpose.MERKLE_ROOT, {
            "root": root, "size": size, "sn_frontier": self._sn_counter})

    def accumulator_bootstrap(self,
                              labels: Tuple[str, ...] = ("active", "deleted"),
                              bits: Optional[int] = None) -> None:
        """Provision trapdoor accumulators inside the enclosure (idempotent).

        One modulus per label; the factorisation trapdoor never leaves
        the card and is destroyed with the signing keys on tamper.  The
        modulus width defaults to the durable key's width so the
        accumulator's security level tracks the signature scheme's.
        """
        keys = self._keys_or_die()
        width = bits if bits is not None else keys.s_key.bits
        for label in labels:
            if label not in self._accumulators:
                self.meter.charge("rsa_keygen", 0.5)  # modulus generation
                self._accumulators[label] = TrapdoorAccumulator(bits=width)

    def _accumulator(self, label: str) -> TrapdoorAccumulator:
        self.tamper.check()
        acc = self._accumulators.get(label)
        if acc is None:
            raise ValueError(f"no accumulator provisioned under label {label!r}")
        return acc

    def accumulator_add(self, label: str, sn: int) -> int:
        """Accumulate *sn*: one small-exponent modexp, O(1).

        Returns the prime representative (public — verifiers recompute it
        from the SN, so returning it is a convenience, not a secret).
        """
        self.meter.crossing()
        acc = self._accumulator(label)
        self.meter.charge(f"acc_update_{acc.bits}",
                          self.profile.rsa_verify_seconds(acc.bits))
        self.meter.charge("acc_nvram", _NVRAM_TOUCH_SECONDS)
        return acc.add(sn)

    def accumulator_remove(self, label: str, sn: int) -> int:
        """Delete *sn* from the set via the trapdoor: O(1) full-width modexp."""
        self.meter.crossing()
        acc = self._accumulator(label)
        self.meter.charge(f"acc_trapdoor_{acc.bits}",
                          self.profile.rsa_sign_seconds(acc.bits))
        self.meter.charge("acc_nvram", _NVRAM_TOUCH_SECONDS)
        return acc.remove(sn)

    def accumulator_witness(self, label: str, sn: int) -> int:
        """Mint a membership witness via the trapdoor: O(1) modexp.

        This is the trapdoor-assisted update path of the distributed
        accumulator — without the trapdoor a witness costs O(set size).
        """
        self.meter.crossing()
        acc = self._accumulator(label)
        self.meter.charge(f"acc_trapdoor_{acc.bits}",
                          self.profile.rsa_sign_seconds(acc.bits))
        return acc.witness(sn)

    def accumulator_sign_value(self, label: str) -> SignedEnvelope:
        """S_s(label, value, frontier): the signed accumulator statement.

        Carries the public modulus (trust in it flows from the signature)
        and the SN allocation frontier so the same statement also backs
        never-allocated denials.  Clients reject stale statements by the
        freshness window, exactly like SN_current.
        """
        self.meter.crossing()
        keys = self._keys_or_die()
        acc = self._accumulator(label)
        return self._sign(keys.s_key, Purpose.ACCUMULATOR_VALUE, {
            "label": label,
            "value": acc.value_bytes(),
            "modulus": acc.modulus_bytes(),
            "members": acc.member_count,
            "sn_frontier": self._sn_counter,
        })

    # -- litigation & attribute updates (§4.2.2 Litigation) -----------------------

    def resign_metadata(self, sn: int, attr_bytes: bytes) -> SignedEnvelope:
        """Re-issue metasig after an authorized attr change (lit_hold/release)."""
        keys = self._keys_or_die()
        self.meter.crossing()
        return self._sign(keys.s_key, Purpose.METASIG, {"sn": sn, "attr": attr_bytes})

    def verify_regulator_credential(self, credential: SignedEnvelope,
                                    regulator_key, sn: int,
                                    max_age_seconds: float = 24 * 3600.0) -> bool:
        """Check an S_reg(SN, time) litigation credential (§4.2.2).

        The credential must be signed by the regulation authority, name
        this SN, and be recent (stale credentials are refused to stop
        replays of old court orders).
        """
        self.tamper.check()
        self.meter.crossing()
        env = credential.envelope
        if env.purpose != Purpose.LITIGATION_CREDENTIAL:
            return False
        if env.fields.get("sn") != sn:
            return False
        if not (self.now - max_age_seconds <= env.timestamp <= self.now + 60.0):
            return False
        self.meter.charge(
            f"rsa_verify_{regulator_key.bits}",
            self.profile.rsa_verify_seconds(regulator_key.bits),
        )
        return regulator_key.verify(env.canonical_bytes(), credential.signature,
                                    hash_name=credential.hash_name)

    # -- enclave-to-enclave key transport (encrypted migration) -----------------

    def key_transport_public(self, ca: Optional[CertificateAuthority] = None):
        """This card's key-transport (KEM) public key, lazily generated.

        A dedicated keypair — never the signing keys — receives DEK
        bundles during encrypted migration.  Returns ``(public_key,
        certificate)``; the certificate (role ``"kx"``) is what a source
        SCPU demands before releasing DEKs to anyone.
        """
        keys = self._keys_or_die()
        if not hasattr(self, "_kx_key") or self._kx_key is None:
            self.meter.charge("rsa_keygen", 0.5)
            self._kx_key = SigningKey.generate(keys.s_key.bits, role="kx")
            self.tamper.register_zeroizer(
                lambda: setattr(self, "_kx_key", None))
        cert = (ca.certify(self._kx_key.public, role="kx", now=self.now)
                if ca is not None else None)
        return self._kx_key.public, cert

    @staticmethod
    def _transport_seal(secret: bytes, payload: bytes):
        import hmac as hmac_mod
        import hashlib as hash_mod
        from repro.crypto.chacha import chacha20_xor
        nonce = secrets.token_bytes(12)
        ciphertext = chacha20_xor(secret, nonce, payload)
        tag = hmac_mod.new(secret, b"kx" + nonce + ciphertext,
                           hash_mod.sha256).digest()
        return nonce, ciphertext, tag

    def export_deks(self, wrapped: Dict[int, WrappedKey],
                    dest_public, dest_certificate, ca_root_key) -> Dict:
        """Release DEKs for migration — only to a CA-certified enclave.

        The source SCPU verifies the destination's ``kx`` certificate
        against the shared CA root (the insider cannot substitute her own
        key), unwraps each DEK, and seals the bundle under an RSA-KEM
        shared secret.  DEK plaintext exists only inside the two
        enclosures and in the sealed bundle.
        """
        self.tamper.check()
        import json as json_mod
        from repro.crypto.keys import CertificateAuthority as CA
        if dest_certificate is None or dest_certificate.role != "kx":
            raise ValueError("destination must present a kx certificate")
        if not CA.verify_certificate(dest_certificate, ca_root_key):
            raise ValueError("destination kx certificate fails CA verification")
        if dest_certificate.public_key != dest_public:
            raise ValueError("certificate does not match the presented key")
        from repro.crypto.rsa import kem_encapsulate
        kem_ct, secret = kem_encapsulate(dest_public)
        self.meter.charge(
            f"rsa_verify_{dest_public.bits}",
            self.profile.rsa_verify_seconds(dest_public.bits))
        deks = {str(sn): self.unwrap_key(w).hex()
                for sn, w in wrapped.items()}
        nonce, ciphertext, tag = self._transport_seal(
            secret, json_mod.dumps(deks, sort_keys=True).encode("utf-8"))
        return {"kem": kem_ct.hex(), "nonce": nonce.hex(),
                "ciphertext": ciphertext.hex(), "tag": tag.hex()}

    def import_deks(self, bundle: Dict) -> Dict[int, WrappedKey]:
        """Accept a sealed DEK bundle and rewrap under this card's epoch."""
        self.tamper.check()
        import hmac as hmac_mod
        import hashlib as hash_mod
        import json as json_mod
        from repro.crypto.chacha import chacha20_xor
        from repro.crypto.rsa import kem_decapsulate
        if not hasattr(self, "_kx_key") or self._kx_key is None:
            raise ValueError("no key-transport key provisioned on this card")
        secret = kem_decapsulate(self._kx_key.keypair.private,
                                 bytes.fromhex(bundle["kem"]))
        self.meter.charge(
            f"rsa_sign_{self._kx_key.bits}",  # private op ≈ one exponentiation
            self.profile.rsa_sign_seconds(self._kx_key.bits))
        nonce = bytes.fromhex(bundle["nonce"])
        ciphertext = bytes.fromhex(bundle["ciphertext"])
        expected = hmac_mod.new(secret, b"kx" + nonce + ciphertext,
                                hash_mod.sha256).digest()
        if not hmac_mod.compare_digest(expected,
                                       bytes.fromhex(bundle["tag"])):
            raise ValueError("DEK bundle failed authentication")
        deks = json_mod.loads(chacha20_xor(secret, nonce, ciphertext))
        return {int(sn): self.wrap_key(bytes.fromhex(dek))
                for sn, dek in deks.items()}

    # -- attestation ------------------------------------------------------------

    def attest(self) -> SignedEnvelope:
        """A signed snapshot of the card's NVRAM state, for auditors.

        Binds an audit to the card that served it: the counter frontier,
        the window base, the shredding epoch, and the card clock, all
        under the durable key with a fresh timestamp.  An examiner
        comparing two attestations can verify monotonicity (counters
        never regressed — a cloned/rolled-back card would show it) and
        liveness (the clock advanced).
        """
        keys = self._keys_or_die()
        return self._sign(keys.s_key, Purpose.ATTESTATION, {
            "sn_counter": self._sn_counter,
            "sn_base": self._sn_base,
            "epoch_id": self._epoch_id,
            "retired_burst_keys": len(self._retired_burst_fingerprints),
        })

    @staticmethod
    def verify_attestation(attestation: SignedEnvelope, s_public_key,
                           previous: Optional[SignedEnvelope] = None) -> bool:
        """Examiner-side check of an attestation (and its monotonicity).

        With *previous* supplied, also checks that time and counters only
        moved forward — the signature a rolled-back or cloned card cannot
        produce consistently.
        """
        env = attestation.envelope
        if env.purpose != Purpose.ATTESTATION:
            return False
        if not s_public_key.verify(env.canonical_bytes(),
                                   attestation.signature,
                                   hash_name=attestation.hash_name):
            return False
        if previous is not None:
            if previous.envelope.purpose != Purpose.ATTESTATION:
                return False
            if attestation.timestamp < previous.timestamp:
                return False
            for counter in ("sn_counter", "sn_base", "epoch_id",
                            "retired_burst_keys"):
                if env.fields[counter] < previous.envelope.fields[counter]:
                    return False
        return True

    # -- crypto-shredding key wrapping (encrypted-records extension) -----------

    @property
    def current_epoch(self) -> int:
        """The live wrapping epoch; older epochs' keys no longer exist."""
        self.tamper.check()
        return self._epoch_id

    def _wrap_mac(self, epoch_key: bytes, nonce: bytes, ct: bytes) -> bytes:
        import hmac as hmac_mod
        import hashlib
        return hmac_mod.new(epoch_key, b"wrap" + nonce + ct,
                            hashlib.sha256).digest()

    def wrap_key(self, dek: bytes) -> WrappedKey:
        """Wrap a 32-byte data-encryption key under the current epoch."""
        self.tamper.check()
        if len(dek) != 32:
            raise ValueError("DEKs are 32 bytes")
        from repro.crypto.chacha import chacha20_xor
        nonce = secrets.token_bytes(12)
        ciphertext = chacha20_xor(self._epoch_key, nonce, dek)
        self.meter.charge("key_wrap", self.profile.sha_seconds(96, 1024))
        return WrappedKey(epoch_id=self._epoch_id, nonce=nonce,
                          ciphertext=ciphertext,
                          tag=self._wrap_mac(self._epoch_key, nonce, ciphertext))

    def unwrap_key(self, wrapped: WrappedKey) -> bytes:
        """Unwrap a DEK; fails for stale epochs (shredded) or bad tags."""
        self.tamper.check()
        if wrapped.epoch_id != self._epoch_id:
            raise ValueError(
                f"epoch {wrapped.epoch_id} key has been destroyed "
                f"(current epoch: {self._epoch_id}) — the DEK is shredded")
        import hmac as hmac_mod
        expected = self._wrap_mac(self._epoch_key, wrapped.nonce,
                                  wrapped.ciphertext)
        if not hmac_mod.compare_digest(expected, wrapped.tag):
            raise ValueError("wrapped key failed authentication")
        from repro.crypto.chacha import chacha20_xor
        self.meter.charge("key_unwrap", self.profile.sha_seconds(96, 1024))
        return chacha20_xor(self._epoch_key, wrapped.nonce, wrapped.ciphertext)

    def rotate_epoch(self, survivors: Iterable[WrappedKey]) -> List[WrappedKey]:
        """Crypto-shred: re-wrap *survivors* under a fresh epoch key.

        Every wrapped DEK *not* in *survivors* becomes permanently
        unrecoverable the moment the old epoch key is destroyed — even
        from hoarded copies of untrusted state.  O(survivors) idle-time
        work per rotation, amortizable across deletion batches.
        """
        self.tamper.check()
        deks = [self.unwrap_key(w) for w in survivors]
        self._epoch_key = secrets.token_bytes(32)  # old key ceases to exist
        self._epoch_id += 1
        self.meter.charge("epoch_nvram", _NVRAM_TOUCH_SECONDS)
        return [self.wrap_key(dek) for dek in deks]

    # -- migration support ---------------------------------------------------------

    def sign_migration_manifest(self, manifest_hash: bytes, record_count: int,
                                sn_base: int, sn_current: int) -> SignedEnvelope:
        """Sign a snapshot manifest for compliant migration (§1).

        The destination store's SCPU verifies this before accepting the
        migrated state as authentic.
        """
        keys = self._keys_or_die()
        self.meter.crossing()
        return self._sign(keys.s_key, Purpose.MIGRATION_MANIFEST, {
            "manifest_hash": manifest_hash,
            "record_count": record_count,
            "sn_base": sn_base,
            "sn_current": sn_current,
        })

    def verify_envelope(self, signed: SignedEnvelope, public_key) -> bool:
        """Verify a foreign SCPU's envelope (migration), charging verify cost."""
        self.tamper.check()
        self.meter.crossing(len(signed.signature))
        return self._verify_envelope_one(signed, public_key)

    def _verify_envelope_one(self, signed: SignedEnvelope, public_key) -> bool:
        self.meter.charge(
            f"rsa_verify_{public_key.bits}",
            self.profile.rsa_verify_seconds(public_key.bits),
        )
        return public_key.verify(signed.envelope.canonical_bytes(), signed.signature,
                                 hash_name=signed.hash_name)

    def verify_envelope_batch(
            self, pairs: Iterable[Tuple[SignedEnvelope, object]]) -> List[bool]:
        """Verify many (envelope, public_key) pairs in one crossing.

        The bulk shape of :meth:`verify_envelope` for recovery VERIFY and
        catalog rebuilds: per-item verify costs are charged unchanged.
        """
        self.tamper.check()
        pairs = list(pairs)
        self.meter.crossing(sum(len(s.signature) for s, _ in pairs))
        return [self._verify_envelope_one(signed, key) for signed, key in pairs]
