"""Tamper-response state machine of the FIPS 140-2 Level 4 enclosure.

The IBM 4764 "destroys internal state (in a process powered by internal
long-term batteries) and shuts down" when physically attacked (§2.2).
:class:`TamperResponder` models that: it owns the sensitive-state
registry, and a tamper event zeroizes everything and latches the device
into a permanently dead state.  The adversary package calls
:meth:`trip` to model a physical attack; every subsequent SCPU service
raises :class:`TamperedError` — exactly the fail-safe the certification
mandates (an attacked device yields no secrets and no further signatures,
it does not yield *wrong* ones).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.core.errors import TamperedError

__all__ = ["TamperedError", "TamperResponder"]


class TamperResponder:
    """Owns zeroizable state and the tripped/armed latch.

    Components register zeroization callbacks; :meth:`trip` runs them all
    (battery-powered — works even with external power cut) and latches.
    """

    def __init__(self) -> None:
        self._zeroizers: List[Callable[[], None]] = []
        self._tripped = False
        self._trip_count = 0

    @property
    def tripped(self) -> bool:
        """True once the enclosure has been breached."""
        return self._tripped

    @property
    def trip_count(self) -> int:
        """Number of tamper events observed (idempotent trips count once)."""
        return self._trip_count

    def register_zeroizer(self, callback: Callable[[], None]) -> None:
        """Register a callback that destroys one piece of sensitive state."""
        self._zeroizers.append(callback)

    def trip(self) -> None:
        """A physical attack: zeroize all registered state and latch dead."""
        if self._tripped:
            return
        self._tripped = True
        self._trip_count += 1
        for zeroize in self._zeroizers:
            zeroize()

    def check(self) -> None:
        """Gate called at the top of every SCPU service entry point."""
        if self._tripped:
            raise TamperedError("secure coprocessor has zeroized and shut down")
