"""Disk cost model — the I/O bottleneck comparison of §5.

The paper closes its evaluation noting that "typical high-speed enterprise
disks feature 3-4ms+ latencies for individual block disk access, twice the
projected average SCPU overheads", so disk I/O — not the WORM layer — is
the expected operational bottleneck.  :class:`DiskDevice` charges
positioning + transfer costs so the benchmark harness can reproduce that
latency decomposition.
"""

from __future__ import annotations

from repro.hardware.calibration import ENTERPRISE_DISK, DiskProfile
from repro.hardware.device import OpMeter

__all__ = ["DiskDevice"]


class DiskDevice:
    """One rotating disk with seek/rotational/transfer cost accounting."""

    def __init__(self, profile: DiskProfile = ENTERPRISE_DISK) -> None:
        self.profile = profile
        self.meter = OpMeter()

    def write(self, nbytes: int, sequential: bool = False) -> float:
        """Charge one write access; returns the virtual cost in seconds."""
        return self.meter.charge(
            "disk_write", self.profile.access_seconds(nbytes, sequential=sequential))

    def read(self, nbytes: int, sequential: bool = False) -> float:
        """Charge one read access; returns the virtual cost in seconds."""
        return self.meter.charge(
            "disk_read", self.profile.access_seconds(nbytes, sequential=sequential))
