"""A Common Cryptographic Architecture (CCA)-style facade over the SCPU.

The IBM 4764 is "compatible with the IBM Common Cryptographic Architecture
(CCA) API", which exposes cryptographic services as named verbs (§2.2).
This facade mirrors the small subset the WORM firmware needs, under their
traditional CCA verb names, so the code reads like what actually runs on
the card:

* ``CSNBRNG`` — random number generate,
* ``CSNBOWH`` — one-way hash,
* ``CSNDDSG`` — digital signature generate,
* ``CSNDDSV`` — digital signature verify,
* ``CSNBCTT`` — clock read (non-standard shorthand for the RTC service).

The facade is deliberately thin: it validates arguments, defers to the
:class:`~repro.hardware.scpu.SecureCoprocessor`, and preserves the tamper
gate (all verbs fail after zeroization).
"""

from __future__ import annotations

import secrets
from typing import Iterable, Tuple

from repro.crypto.envelope import SignedEnvelope
from repro.hardware.scpu import SecureCoprocessor, Strength

__all__ = ["CcaFacade"]


class CcaFacade:
    """CCA-verb view of one secure coprocessor."""

    def __init__(self, scpu: SecureCoprocessor) -> None:
        self._scpu = scpu

    def csnbrng(self, nbytes: int = 32) -> bytes:
        """Random Number Generate: *nbytes* of enclosure-grade randomness."""
        self._scpu.tamper.check()
        if not 1 <= nbytes <= 8192:
            raise ValueError("CSNBRNG supports 1..8192 bytes per call")
        self._scpu.meter.charge("rng", 1e-5)
        return secrets.token_bytes(nbytes)

    def csnbowh(self, chunks: Iterable[bytes]) -> bytes:
        """One-Way Hash over record data (chained, inside the enclosure)."""
        return self._scpu.hash_record_data(chunks)

    def csnddsg(self, sn: int, attr_bytes: bytes, data_hash: bytes,
                strength: str = Strength.STRONG
                ) -> Tuple[SignedEnvelope, SignedEnvelope]:
        """Digital Signature Generate: the write-witness pair."""
        return self._scpu.witness_write(sn, attr_bytes, data_hash, strength=strength)

    def csnddsv(self, signed: SignedEnvelope, public_key) -> bool:
        """Digital Signature Verify (inside the enclosure)."""
        return self._scpu.verify_envelope(signed, public_key)

    def csnbctt(self) -> float:
        """Read the battery-backed tamper-protected clock."""
        self._scpu.tamper.check()
        return self._scpu.now
