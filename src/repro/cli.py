"""Command-line interface: a persistent on-disk Strong WORM store.

Turns the library into a usable tool::

    python -m repro.cli init /var/worm
    python -m repro.cli write /var/worm report.pdf --policy sox
    python -m repro.cli cat /var/worm 1 > report.pdf
    python -m repro.cli fs-put /var/worm /ledger/2026.csv ledger.csv
    python -m repro.cli fs-cat /var/worm /ledger/2026.csv
    python -m repro.cli status /var/worm
    python -m repro.cli maintain /var/worm
    python -m repro.cli audit /var/worm
    python -m repro.cli shard-bench --shards 4 --batch 8

SIMULATION CAVEAT: the real system's trust anchor is key material sealed
inside a tamper-responding coprocessor.  This CLI necessarily persists
the simulated SCPU's state (keys, counters) in ``scpu_state.json`` on
ordinary disk — fine for evaluation and demos, meaningless against a
real insider.  Deployments would replace :func:`_load_state`'s key
handling with an actual card.

Store directory layout::

    <dir>/blocks/            record payloads (DirectoryBlockStore)
    <dir>/scpu_state.json    simulated card NVRAM (keys, counters)
    <dir>/ca.json            the demo regulatory CA's root key
    <dir>/state.json         VRDT snapshot + file-system index
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Optional, Tuple

from repro.core.audit import StoreAuditor
from repro.core.errors import TamperedError, WormError
from repro.core.worm import StrongWormStore
from repro.crypto.hmac_scheme import HmacScheme
from repro.crypto.keys import CertificateAuthority, SigningKey
from repro.crypto.rsa import RsaKeyPair, RsaPrivateKey
from repro.fs import WormFileSystem
from repro.hardware.scpu import ScpuKeyring, SecureCoprocessor, Strength
from repro.sim.clock import SystemClock
from repro.sim.metrics import format_table
from repro.storage.block_store import DirectoryBlockStore
from repro.storage.vrdt import VrdTable

__all__ = ["main"]

_YEAR = 365.0 * 24 * 3600


# ---------------------------------------------------------------------------
# persistence
# ---------------------------------------------------------------------------

def _key_to_dict(key: SigningKey) -> dict:
    return {"private": key.keypair.private.to_dict(), "role": key.role}


def _key_from_dict(data: dict) -> SigningKey:
    private = RsaPrivateKey.from_dict(data["private"])
    return SigningKey(keypair=RsaKeyPair(private=private), role=data["role"])


def _save_state(root: Path, store: StrongWormStore,
                fs: WormFileSystem) -> None:
    keys = store.scpu._keys_or_die()  # wormlint: disable=W001 - simulation-only persistence of the demo card
    scpu_state = {
        "s_key": _key_to_dict(keys.s_key),
        "d_key": _key_to_dict(keys.d_key),
        "burst_key": _key_to_dict(keys.burst_key),
        "hmac_key": keys.hmac._key.hex(),
        "sn_counter": store.scpu._sn_counter,  # wormlint: disable=W001 - demo persistence
        "sn_base": store.scpu._sn_base,  # wormlint: disable=W001 - demo persistence
        "retired_burst": list(store.scpu._retired_burst_fingerprints),  # wormlint: disable=W001 - demo persistence
    }
    (root / "scpu_state.json").write_text(json.dumps(scpu_state))
    state = {"vrdt": store.vrdt.to_dict(), "fs": fs.to_dict()}
    (root / "state.json").write_text(json.dumps(state))


def _load_state(root: Path) -> Tuple[StrongWormStore, WormFileSystem,
                                     CertificateAuthority]:
    scpu_state = json.loads((root / "scpu_state.json").read_text())
    keyring = ScpuKeyring(
        s_key=_key_from_dict(scpu_state["s_key"]),
        d_key=_key_from_dict(scpu_state["d_key"]),
        burst_key=_key_from_dict(scpu_state["burst_key"]),
        hmac=HmacScheme(key=bytes.fromhex(scpu_state["hmac_key"])),
    )
    scpu = SecureCoprocessor(keyring=keyring, clock=SystemClock())
    scpu._sn_counter = int(scpu_state["sn_counter"])  # wormlint: disable=W001 - demo persistence
    scpu._sn_base = int(scpu_state["sn_base"])  # wormlint: disable=W001 - demo persistence
    scpu._retired_burst_fingerprints = list(scpu_state["retired_burst"])  # wormlint: disable=W001 - demo persistence

    store = StrongWormStore(
        scpu=scpu, block_store=DirectoryBlockStore(root / "blocks"))
    state = json.loads((root / "state.json").read_text())
    restored = VrdTable.from_dict(state["vrdt"])
    store.vrdt.__dict__.update(restored.__dict__)
    store.windows._vrdt = store.vrdt
    fs = WormFileSystem.from_dict(store, state["fs"])
    # Rebuild SCPU-side schedules from the (verified) table.
    store.retention.night_scan(store.now)
    _reenqueue_weak(store)

    ca_data = json.loads((root / "ca.json").read_text())
    ca = CertificateAuthority(root_key=_key_from_dict(ca_data))
    return store, fs, ca


def _reenqueue_weak(store: StrongWormStore) -> None:
    """Re-discover weak/HMAC constructs that still need strengthening."""
    from repro.crypto.keys import security_lifetime
    strong_fp = store.scpu.public_keys()["s"].fingerprint()
    for sn in store.vrdt.active_sns:
        vrd = store.vrdt.get_active(sn)
        if vrd is None:
            continue
        signed = vrd.metasig
        if signed.scheme == "hmac":
            store.strengthening.enqueue(sn, signed.timestamp, 3600.0)
        elif signed.key_fingerprint != strong_fp:
            store.strengthening.enqueue(
                sn, signed.timestamp, security_lifetime(signed.key_bits))


def _open(directory: str):
    root = Path(directory)
    if not (root / "scpu_state.json").exists():
        raise SystemExit(f"{directory} is not an initialized WORM store "
                         f"(run: repro.cli init {directory})")
    return root, *_load_state(root)


# ---------------------------------------------------------------------------
# commands
# ---------------------------------------------------------------------------

def cmd_init(args) -> int:
    root = Path(args.directory)
    if (root / "scpu_state.json").exists():
        raise SystemExit(f"{args.directory} is already initialized")
    root.mkdir(parents=True, exist_ok=True)
    bits = args.strong_bits
    print(f"generating {bits}-bit SCPU keys (one-time)...")
    keyring = ScpuKeyring(
        s_key=SigningKey.generate(bits, "s"),
        d_key=SigningKey.generate(bits, "d"),
        burst_key=SigningKey.generate(512, "burst"),
        hmac=HmacScheme(),
    )
    scpu = SecureCoprocessor(keyring=keyring, clock=SystemClock())
    store = StrongWormStore(
        scpu=scpu, block_store=DirectoryBlockStore(root / "blocks"))
    fs = WormFileSystem(store)
    ca = CertificateAuthority(bits=min(bits, 1024))
    (root / "ca.json").write_text(json.dumps(_key_to_dict(ca._root)))
    _save_state(root, store, fs)
    print(f"initialized WORM store at {root} "
          f"(s-key fingerprint {keyring.s_key.fingerprint})")
    return 0


def cmd_write(args) -> int:
    root, store, fs, ca = _open(args.directory)
    payload = Path(args.file).read_bytes()
    retention = args.retention_years * _YEAR if args.retention_years else None
    receipt = store.write([payload], policy=args.policy,
                          retention_seconds=retention,
                          strength=args.strength)
    _save_state(root, store, fs)
    print(f"SN {receipt.sn}  ({len(payload)} bytes, policy={args.policy}, "
          f"strength={args.strength}, "
          f"scpu cost {receipt.costs['scpu'] * 1000:.2f} virtual ms)")
    return 0


def cmd_cat(args) -> int:
    root, store, fs, ca = _open(args.directory)
    client = store.make_client(ca)
    result = store.read(args.sn)
    verified = client.verify_read(result, args.sn)
    if verified.status != "active":
        print(f"SN {args.sn}: {verified.status} "
              f"(proof: {verified.proof_kind})", file=sys.stderr)
        return 1
    sys.stdout.buffer.write(verified.data)
    sys.stdout.buffer.flush()
    print(f"\n[verified: weakly_signed={verified.weakly_signed}]",
          file=sys.stderr)
    return 0


def cmd_fs_put(args) -> int:
    root, store, fs, ca = _open(args.directory)
    content = Path(args.file).read_bytes()
    if args.policy:
        directory = args.path.rsplit("/", 1)[0] or "/"
        fs.set_directory_policy(directory, args.policy)
    entry = (fs.append(args.path, content) if args.append
             else fs.write(args.path, content))
    _save_state(root, store, fs)
    print(f"{entry.path} v{entry.version} -> SN {entry.sn} "
          f"({entry.size} bytes, policy={entry.policy})")
    return 0


def cmd_fs_cat(args) -> int:
    root, store, fs, ca = _open(args.directory)
    client = store.make_client(ca)
    verified = fs.verified_read(client, args.path, version=args.version)
    sys.stdout.buffer.write(verified.content)
    sys.stdout.buffer.flush()
    print(f"\n[{verified.path} v{verified.version}, SN {verified.sn}, "
          f"verified]", file=sys.stderr)
    return 0


def cmd_fs_ls(args) -> int:
    root, store, fs, ca = _open(args.directory)
    for name in fs.listdir(args.path):
        print(name)
    return 0


def cmd_fs_history(args) -> int:
    """Show every committed version of a path (survives unlink)."""
    root, store, fs, ca = _open(args.directory)
    versions = fs.versions(args.path)
    if not versions:
        print(f"no history for {args.path}", file=sys.stderr)
        return 1
    for entry in versions:
        print(f"v{entry.version}  SN {entry.sn}  {entry.size} bytes  "
              f"policy={entry.policy}  created_at={entry.created_at:.0f}")
    if not fs.exists(args.path):
        print("(currently unlinked — versions remain auditable by number)",
              file=sys.stderr)
    return 0


def cmd_status(args) -> int:
    root, store, fs, ca = _open(args.directory)
    client = store.make_client(ca)
    overview = StoreAuditor(store, client).compliance_overview()
    print(f"store:          {root}")
    print(f"frontier SN:    {store.scpu.current_serial_number}")
    print(f"SN base:        {store.scpu.sn_base}")
    for key, value in overview.items():
        print(f"{key + ':':24s}{value}")
    return 0


def cmd_maintain(args) -> int:
    root, store, fs, ca = _open(args.directory)
    summary = store.maintenance()
    _save_state(root, store, fs)
    for key, value in summary.items():
        print(f"{key + ':':22s}{value}")
    return 0


def cmd_audit(args) -> int:
    root, store, fs, ca = _open(args.directory)
    client = store.make_client(ca)
    store.windows.refresh_current(force=True)
    report = StoreAuditor(store, client).sweep()
    rows = [[str(f.sn), f.verdict,
             "weak" if f.weakly_signed else "", f.detail[:60]]
            for f in report.findings]
    print(format_table(["SN", "verdict", "sig", "detail"], rows,
                       title=f"Audit sweep @ {time.ctime(report.audited_at)}"))
    summary = report.summary()
    print(f"\n{summary}")
    if not report.clean:
        print("TAMPERING DETECTED", file=sys.stderr)
        return 2
    print("store is clean")
    return 0


def cmd_attest(args) -> int:
    """Print (and optionally chain-verify) an SCPU attestation."""
    root, store, fs, ca = _open(args.directory)
    attestation = store.scpu.attest()
    blob = json.dumps(attestation.to_dict())
    if args.previous:
        from repro.crypto.envelope import SignedEnvelope
        from repro.hardware.scpu import SecureCoprocessor
        previous = SignedEnvelope.from_dict(
            json.loads(Path(args.previous).read_text()))
        ok = SecureCoprocessor.verify_attestation(
            attestation, store.scpu.public_keys()["s"], previous=previous)
        print(f"chain check vs {args.previous}: "
              f"{'OK' if ok else 'FAILED (rollback or forgery)'}",
              file=sys.stderr)
        if not ok:
            return 2
    if args.out:
        Path(args.out).write_text(blob)
        print(f"attestation written to {args.out}", file=sys.stderr)
    env = attestation.envelope
    print(f"sn_counter={env.fields['sn_counter']} "
          f"sn_base={env.fields['sn_base']} "
          f"epoch={env.fields['epoch_id']} "
          f"t={env.timestamp:.0f}")
    return 0


def cmd_shard_bench(args) -> int:
    """Virtual-time scaling benchmark of the sharded group-commit front-end.

    Builds in-memory sharded stores (no directory needed), drives a
    closed-loop write workload through the queueing simulator, and prints
    throughput for 1..N shards plus the group-commit gain at N shards.
    Deterministic virtual-time results — the same table the
    ``benchmarks/test_sharded_scaling.py`` suite asserts on.
    """
    from repro import demo_keyring
    from repro.sim.driver import (SimulationConfig, make_sharded_sim_store,
                                  run_sharded_closed_loop)
    from repro.sim.workload import ClosedLoopArrivals, FixedSize

    if args.shards < 1 or args.records < 1 or args.batch < 1:
        print("shard-bench: --shards, --records and --batch must be >= 1",
              file=sys.stderr)
        return 2

    config = SimulationConfig(workers=args.workers, host_count=8,
                              disk_count=16)

    def rate(shards: int, batch: int) -> float:
        simstore = make_sharded_sim_store(shards, config=config,
                                          keyring=demo_keyring())
        metrics = run_sharded_closed_loop(
            simstore, ClosedLoopArrivals(FixedSize(args.record_size),
                                         args.records),
            config=config, batch_size=batch)
        return metrics.throughput("write")

    counts, rates = [], []
    n = 1
    while n <= args.shards:
        counts.append(n)
        rates.append(rate(n, 1))
        n *= 2
    if counts[-1] != args.shards:
        counts.append(args.shards)
        rates.append(rate(args.shards, 1))
    batched = rate(args.shards, args.batch)

    rows = [[str(c), f"{r:.0f}", f"{r / rates[0]:.2f}x"]
            for c, r in zip(counts, rates)]
    rows.append([f"{args.shards} (batch={args.batch})", f"{batched:.0f}",
                 f"{batched / rates[0]:.2f}x"])
    print(format_table(
        ["shards", "writes/s", "vs 1 shard"], rows,
        title=f"Sharded write throughput — {args.record_size}B records, "
              f"virtual time"))
    print(f"\ngroup-commit gain at {args.shards} shards: "
          f"{batched / rates[-1]:.2f}x over per-record writes")
    return 0


def cmd_faults_demo(args) -> int:
    """Replay a canned fault plan against a sharded store (in-memory).

    Four failure domains ingest records through the best-effort
    group-commit path while one card trips tamper response mid-run and
    every card drops a fraction of its requests.  Afterwards every
    accepted record is read back and client-verified; the health/retry
    report is printed.  Exit 0 when zero accepted records were lost,
    2 otherwise — the degraded-mode availability claim, checkable from
    a shell.
    """
    from repro import demo_keyring
    from repro.core.config import StoreConfig
    from repro.faults import FaultPlan
    from repro.sim.driver import (SimulationConfig, make_sharded_sim_store,
                                  run_sharded_chaos_loop)
    from repro.sim.workload import WorkRequest
    from repro.storage.journal import MemoryIntentJournal

    shards = args.shards
    if shards < 2:
        print("faults-demo: --shards must be >= 2 (one dies)",
              file=sys.stderr)
        return 2
    plans = [FaultPlan(seed=args.seed + i, transient_rate=args.fault_rate)
             for i in range(shards)]
    plans[1].tamper(after_ops=args.tamper_after)
    simstore = make_sharded_sim_store(
        shards,
        config=SimulationConfig(workers=16),
        keyring=demo_keyring(),
        store_config=StoreConfig(shard_count=shards, group_commit_size=4),
        fault_plans=plans,
        journal=MemoryIntentJournal())
    requests = [WorkRequest(kind="write", arrival=0.0, size=args.record_size,
                            retention=3600.0)
                for _ in range(args.records)]
    result = run_sharded_chaos_loop(simstore, requests)

    store = simstore.store
    ca = CertificateAuthority(bits=512)
    client = store.make_client(ca)
    lost = 0
    for receipt in result.receipts:
        try:
            read = store.read(receipt.locator)
            verified = client.verify_read(read, receipt.sn)
            if verified.status != "active":
                lost += 1
        except TamperedError:
            # Terminal: the front-end says the *whole store* is dead, not
            # one unreadable record — that is an outage, not a loss count.
            raise
        except Exception:
            lost += 1

    health = result.health
    rows = []
    for shard in health["shards"]:
        rows.append([
            str(shard["shard_id"]), shard["state"],
            "yes" if shard["tamper_tripped"] else "no",
            str(shard["retry"]["retries"]),
            str(shard["pending_records"]),
        ])
    print(format_table(
        ["shard", "state", "tamper", "retries", "pending"], rows,
        title=f"Fault replay — {shards} shards, {args.records} records, "
              f"{args.fault_rate:.0%} transient faults, "
              f"shard 1 zeroized after {args.tamper_after} ops"))
    counters = result.metrics.counters
    print(f"\naccepted:   {result.accepted} records "
          f"({counters.get('records.unflushed', 0)} still pending)")
    print(f"verified:   {result.accepted - lost} readable+verifiable, "
          f"{lost} lost")
    print(f"faults:     {counters.get('faults.transient', 0)} transient, "
          f"{counters.get('faults.tamper', 0)} tamper")
    print(f"retries:    {counters.get('retry.retries', 0)} "
          f"({counters.get('retry.exhausted', 0)} exhausted)")
    print(f"failovers:  {counters.get('failovers', 0)}")
    print(f"degraded:   shards {health['degraded_shards']}")
    if lost:
        print("RECORD LOSS DETECTED", file=sys.stderr)
        return 2
    print("no accepted record lost")
    return 0


def cmd_obs(args) -> int:
    """Run a short sharded workload and export its telemetry (in-memory).

    Drives a fault-injected group-commit ingest through the chaos loop
    with a :class:`~repro.obs.TelemetryBus` attached, reads a few
    records back, runs one maintenance slice, then **reconciles** the
    snapshot against the legacy ``health_report``/``cost_summary``
    numbers — exit 2 with ``TELEMETRY MISMATCH`` if the two accountings
    disagree.  ``--check SCHEMA`` additionally validates the snapshot
    against a committed JSON schema (counter names are an API; CI runs
    this so renames fail loudly).  ``--format`` selects the export:
    ``summary`` (human table), ``snapshot`` (canonical JSON), ``jsonl``
    (event log), ``prom`` (Prometheus text), ``chrome`` (trace spans).
    """
    from repro import demo_keyring
    from repro.core.config import StoreConfig
    from repro.faults import FaultPlan
    from repro.obs import (TelemetryBus, load_schema, reconcile_sharded,
                           snapshot_json, to_chrome_trace, to_jsonl,
                           to_prometheus, validate)
    from repro.sim.driver import (SimulationConfig, make_sharded_sim_store,
                                  run_sharded_chaos_loop)
    from repro.sim.tracing import TraceRecorder
    from repro.sim.workload import WorkRequest

    if args.shards < 1 or args.records < 1:
        print("obs: --shards and --records must be >= 1", file=sys.stderr)
        return 2
    if args.tamper_after > 0 and args.shards < 2:
        print("obs: --tamper-after needs --shards >= 2 (one card dies)",
              file=sys.stderr)
        return 2

    bus = TelemetryBus(trace=TraceRecorder())
    plans = None
    if args.fault_rate > 0 or args.tamper_after > 0:
        plans = [FaultPlan(seed=args.seed + i,
                           transient_rate=args.fault_rate)
                 for i in range(args.shards)]
        if args.tamper_after > 0:
            plans[1].tamper(after_ops=args.tamper_after)
    simstore = make_sharded_sim_store(
        args.shards,
        config=SimulationConfig(workers=16),
        keyring=demo_keyring(),
        store_config=StoreConfig(shard_count=args.shards,
                                 group_commit_size=4, observe=bus),
        fault_plans=plans)
    requests = [WorkRequest(kind="write", arrival=0.0,
                            size=args.record_size, retention=3600.0)
                for _ in range(args.records)]
    result = run_sharded_chaos_loop(
        simstore, requests, write_kwargs={"strength": Strength.WEAK})

    store = simstore.store
    for receipt in result.receipts[:8]:
        store.read(receipt.locator)
    store.maintenance()

    # Exercise the service front-end so its counters (including the
    # canonical "default" tenant's) are part of the committed snapshot
    # schema — a rename in repro.service must fail `make obs`.  Only
    # batch writes, so every store write stays a group commit and the
    # writes==group_commits invariant of this loop survives.
    from repro.service import ServiceRequest, TenantConfig, WormService
    service = WormService(store, tenants=[
        TenantConfig("default", rate=0.1, burst=8, max_deferred=64)])
    for batch in range(3):
        service.handle(ServiceRequest(
            operation="write_batch", tenant="default",
            params={"payloads": [b"obs-%d-%d" % (batch, i)
                                 for i in range(4)],
                    "retention_seconds": 3600.0}))
    service.flush()

    # Exercise cross-site replication + verified recovery on the same
    # bus so the replication.*/recovery.* names (and the lag histogram)
    # are part of the committed snapshot schema.  The mini-site's own
    # store metrics deliberately stay OFF the bus — only the
    # replication/recovery layers observe here — so the reconciliation
    # below keeps squaring the bus against the main store alone.
    from repro.core.sharded import ShardedWormStore
    from repro.recovery import (ReplicaSite, ReplicatedIntentJournal,
                                ReplicationPump, ReplicationTransport,
                                SiteRecovery)
    from repro.sim.manual_clock import ManualClock
    from repro.storage.journal import MemoryIntentJournal
    ca = CertificateAuthority(bits=512)
    mini_clock = ManualClock()
    mini_transport = ReplicationTransport(
        plan=FaultPlan(seed=args.seed, transient_rate=0.25), obs=bus)
    mini_replica = ReplicaSite()
    mini = ShardedWormStore.build(
        shard_count=2, keyring=demo_keyring(), clock=mini_clock,
        config=StoreConfig(group_commit_size=4),
        journal=ReplicatedIntentJournal(
            MemoryIntentJournal(), mini_transport, mini_replica,
            clock=mini_clock, obs=bus))
    mini_pump = ReplicationPump(mini, mini_transport, mini_replica,
                                ca=ca, obs=bus)
    for batch in range(3):
        mini.write_batch([b"obs-replica-%d-%d" % (batch, i)
                          for i in range(4)], retention_seconds=3600.0)
        mini.advance_clocks(1.0)
        mini_pump.pump()
    for _ in range(60):
        if (mini_pump.unacked_count == 0
                and mini_transport.in_flight == 0):
            break
        mini.advance_clocks(2.0)
        mini_pump.pump()
    SiteRecovery(
        mini_replica,
        ShardedWormStore.build(shard_count=2, keyring=demo_keyring(),
                               clock=ManualClock(),
                               config=StoreConfig(group_commit_size=4)),
        ca, obs=bus).run()

    snapshot = store.telemetry_snapshot()

    status = 0
    problems = reconcile_sharded(store, snapshot) + service.reconcile()
    if problems:
        print("TELEMETRY MISMATCH", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        status = 2
    if args.check:
        schema_problems = validate(snapshot, load_schema(args.check))
        if schema_problems:
            print(f"SCHEMA VIOLATION ({args.check})", file=sys.stderr)
            for problem in schema_problems:
                print(f"  {problem}", file=sys.stderr)
            status = 2

    if args.format == "snapshot":
        output = snapshot_json(bus)
    elif args.format == "jsonl":
        output = to_jsonl(bus)
    elif args.format == "prom":
        output = to_prometheus(bus)
    elif args.format == "chrome":
        output = to_chrome_trace(bus)
    else:
        counters = snapshot["counters"]
        gauges = snapshot["gauges"]
        rows = [[name, f"{counters[name]:g}"] for name in sorted(counters)]
        rows += [[name, f"{gauges[name]:g} (gauge)"]
                 for name in sorted(gauges)]
        output = format_table(
            ["metric", "value"], rows,
            title=f"Telemetry — {args.shards} shards, {args.records} "
                  f"records, {args.fault_rate:.0%} transient faults")
        events = snapshot["events"]
        output += (f"\n\nevents: {events['count']} "
                   f"({events['dropped']} dropped)  "
                   f"spans: {snapshot['spans']}")
        output += ("\nreconciliation vs health_report/cost_summary: "
                   + ("OK" if not problems else "MISMATCH"))
    if args.out:
        Path(args.out).write_text(output + "\n")
        print(f"telemetry written to {args.out}", file=sys.stderr)
    else:
        print(output)
    return status


def cmd_recover(args) -> int:
    """Site-loss recovery drill at small scale (in-memory, virtual time).

    Builds a primary site whose intent journal mirrors synchronously and
    whose catalog ships asynchronously to an untrusted standby over a
    flaky WAN (``--fault-rate``), ingests ``--records`` group-committed
    records, then kills the whole site mid-stream — catalog tail
    unshipped, artifacts still in flight.  A fresh site is rebuilt from
    the replica through the staged recovery machine (DISCOVER →
    DOWNLOAD → VERIFY → REPLAY → RESUME) and the drill proves the
    compliance story: every acknowledged locator reads back
    byte-identical *and verifies* against the new site's own SCPU, with
    the virtual-time RTO under ``--rto-bound``.  Exit 2 on any loss,
    laundered tamper, or bound violation.  ``--corrupt`` flips one
    replicated payload byte first and inverts the expectation: recovery
    must terminate in ``TamperedError`` (exit 2 if the lying replica is
    imported instead).
    """
    from repro import demo_keyring
    from repro.core.config import StoreConfig
    from repro.core.locator import RecordLocator
    from repro.core.sharded import ShardedWormStore
    from repro.crypto.keys import CertificateAuthority
    from repro.faults import FaultPlan
    from repro.obs import TelemetryBus
    from repro.recovery import (ReplicaSite, ReplicatedIntentJournal,
                                ReplicationPump, ReplicationTransport,
                                SiteRecovery)
    from repro.sim.manual_clock import ManualClock
    from repro.storage.journal import MemoryIntentJournal

    if args.records < 1 or args.shards < 1:
        print("recover: --records and --shards must be >= 1",
              file=sys.stderr)
        return 2

    bus = TelemetryBus()
    ca = CertificateAuthority(bits=512)
    clock = ManualClock()
    plan = (FaultPlan(seed=args.seed, transient_rate=args.fault_rate)
            if args.fault_rate > 0 else None)
    transport = ReplicationTransport(plan=plan, obs=bus)
    replica = ReplicaSite()
    journal = ReplicatedIntentJournal(
        MemoryIntentJournal(), transport, replica, clock=clock, obs=bus)
    store = ShardedWormStore.build(
        shard_count=args.shards, keyring=demo_keyring(), clock=clock,
        config=StoreConfig(group_commit_size=args.group_commit),
        journal=journal)
    pump = ReplicationPump(store, transport, replica, ca=ca, obs=bus)

    ledger = {}
    written = chunks = 0
    chunk = max(1, args.group_commit)
    while written < args.records:
        count = min(chunk, args.records - written)
        payloads = [b"recover-%06d|" % (written + i)
                    + b"." * args.record_size for i in range(count)]
        receipts = store.write_batch(payloads, retention_seconds=86_400.0)
        for receipt, payload in zip(receipts, payloads):
            ledger[receipt.locator.pack()] = payload
        written += count
        chunks += 1
        store.advance_clocks(1.0)
        if chunks % 4 == 0:
            pump.pump()

    if args.corrupt:
        # The standby must have caught up before its disk starts lying,
        # or DISCOVER fails for the mundane reason (no certificates).
        for _ in range(200):
            if pump.unacked_count == 0 and transport.in_flight == 0:
                break
            store.advance_clocks(2.0)
            pump.pump()
    shipped_tail = pump.unacked_count > 0 or transport.in_flight > 0
    del store, pump, transport  # the site is gone

    if args.corrupt:
        # One flipped bit on the standby's (untrusted) disk.
        for shard_id in replica.shard_ids:
            history = replica._shards[shard_id].history
            payload = next((p for p in history if p.get("blocks")), None)
            if payload is not None:
                key = sorted(payload["blocks"])[0]
                data = payload["blocks"][key]
                payload["blocks"][key] = bytes([data[0] ^ 0x01]) + data[1:]
                break

    standby = ShardedWormStore.build(
        shard_count=args.shards, keyring=demo_keyring(),
        clock=ManualClock(),
        config=StoreConfig(group_commit_size=args.group_commit))
    recovery = SiteRecovery(replica, standby, ca,
                            link_bandwidth=args.link_bandwidth, obs=bus)

    if args.corrupt:
        try:
            recovery.run()
        except TamperedError as exc:  # wormlint: disable=W004,W008 - drill asserts detection: the terminal tamper *is* the passing outcome
            imported = sum(len(s.vrdt.active_sns) for s in standby.shards)
            if imported:
                print(f"tamper detected but {imported} records were "
                      "imported first", file=sys.stderr)
                return 2
            print(f"TAMPER DETECTED (as required): {exc}")
            print("corrupted replica refused; nothing laundered into "
                  "the new site")
            return 0
        print("CORRUPTED REPLICA LAUNDERED INTO THE NEW SITE",
              file=sys.stderr)
        return 2

    report = recovery.run()
    client = standby.make_client(ca)
    lost = []
    verified_sns = set()
    for old_packed, payload in ledger.items():
        new_packed = report.locator_mapping.get(old_packed, old_packed)
        try:
            if standby.read_record(new_packed) != payload:
                lost.append((old_packed, "payload mismatch"))
                continue
        except WormError as exc:  # wormlint: disable=W004,W008 - drill verdict: unreadable acknowledged write is the reported loss
            lost.append((old_packed, f"unreadable: {exc}"))
            continue
        locator = RecordLocator.unpack(new_packed)
        if (locator.shard_id, locator.sn) not in verified_sns:
            verified_sns.add((locator.shard_id, locator.sn))
            verified = client.verify_read(
                standby.shard(locator.shard_id).read(locator.sn),
                locator.sn)
            if verified.status != "active":
                lost.append((old_packed, f"verify: {verified.status}"))

    rows = [
        ["records acknowledged", str(len(ledger))],
        ["catalog tail unshipped at kill", "yes" if shipped_tail else "no"],
        ["stages completed", " -> ".join(report.stages_completed)],
        ["windows re-verified", str(report.windows_verified)],
        ["VRs verified / replayed",
         f"{report.records_verified} / {report.records_replayed}"],
        ["journal entries requeued", str(report.journal_requeued)],
        ["VRs unverifiable (re-ingested)", str(len(report.unverifiable))],
        ["records lost", str(len(lost))],
        ["transfer seconds (virtual)", f"{report.transfer_seconds:.2f}"],
        ["RTO seconds (virtual)",
         f"{report.rto_seconds:.2f} (bound {args.rto_bound:.0f})"],
    ]
    print(format_table(["measure", "value"], rows,
                       title=f"Recovery drill — {args.shards} shards, "
                             f"{len(ledger)} records, "
                             f"{args.fault_rate:.0%} WAN faults"))
    for old_packed, reason in lost[:10]:
        print(f"  LOST {old_packed}: {reason}", file=sys.stderr)
    if lost or not report.complete:
        print("RECOVERY FAILED: acknowledged writes lost", file=sys.stderr)
        return 2
    if report.rto_seconds > args.rto_bound:
        print(f"RTO BOUND EXCEEDED: {report.rto_seconds:.1f}s > "
              f"{args.rto_bound:.1f}s", file=sys.stderr)
        return 2
    print(f"\nzero acknowledged-write loss: {len(ledger)} records "
          f"readable and verified on the rebuilt site")
    return 0


def cmd_tenant_bench(args) -> int:
    """Open-loop multi-tenant service benchmark in virtual time.

    Drives a diurnal, Zipf-skewed, Poisson workload (simulating
    ``--users`` end users per tenant) through the service front-end,
    with the end-of-day burst deliberately above the per-tenant
    admission rate so overload sheds into the deferred group-commit
    machinery.  Afterwards every admitted-or-deferred write is redeemed
    and read back **through the service**, rejections are checked for
    well-formed problem payloads and ``RateLimit-*`` headers, and the
    per-tenant telemetry counters are reconciled against the service's
    receipt ledger.  Exit 0 only when not a single admitted write was
    lost and every accounting agrees; 2 otherwise.
    """
    from repro import demo_keyring
    from repro.core.config import StoreConfig
    from repro.core.sharded import ShardedWormStore
    from repro.obs import TelemetryBus
    from repro.service import ServiceRequest, TenantConfig, WormService
    from repro.sim.workload import FixedSize, MultiTenantArrivals

    if args.shards < 1 or args.tenants < 1:
        print("tenant-bench: --shards and --tenants must be >= 1",
              file=sys.stderr)
        return 2

    bus = TelemetryBus()
    store = ShardedWormStore.build(
        shard_count=args.shards, keyring=demo_keyring(),
        config=StoreConfig(shard_count=args.shards,
                           group_commit_size=args.group_commit,
                           observe=bus))
    names = [f"tenant{i}" for i in range(args.tenants)]
    service = WormService(store, tenants=[
        TenantConfig(name, rate=args.rate, burst=args.burst_tokens,
                     max_deferred=args.max_deferred)
        for name in names])
    workload = MultiTenantArrivals(
        names, FixedSize(args.record_size), days=args.days,
        night_rate=args.night_rate, day_rate=args.day_rate,
        burst_rate=args.burst_rate, burst_seconds=args.burst_seconds,
        skew=args.skew, users_per_tenant=args.users,
        hour_seconds=args.hour_seconds, seed=args.seed)

    current = store.now

    def advance(to: float) -> None:
        nonlocal current
        if to > current:
            store.advance_clocks(to - current)
            current = to

    malformed = []
    rejected_codes = {}

    def well_formed_rejection(response) -> bool:
        """Every refusal must be a coded problem with honest headers."""
        problem = response.problem
        ok = (problem is not None and problem.code
              and problem.type.endswith(problem.code)
              and problem.status == response.status
              and "RateLimit-Limit" in response.headers
              and "RateLimit-Remaining" in response.headers
              and "RateLimit-Reset" in response.headers
              and ("Retry-After" in response.headers
                   if response.status == 429 else True))
        if ok:
            rejected_codes[problem.code] = (
                rejected_codes.get(problem.code, 0) + 1)
        else:
            malformed.append(response.to_dict())
        return ok

    def patient(request) -> object:
        """Handle *request*, honoring Retry-After in virtual time."""
        response = service.handle(request)
        while response.status == 429 and well_formed_rejection(response):
            advance(current + float(response.headers["Retry-After"]))
            response = service.handle(request)
        return response

    ledger = {}        # scoped locator -> expected payload
    open_tickets = {}  # ticket -> (tenant, expected payload)
    offered = accepted = deferred = rejected = 0
    last_flush = current
    seq = 0
    for item in workload:
        advance(item.request.arrival)
        if current - last_flush >= args.flush_interval:
            service.flush()
            last_flush = current
        seq += 1
        head = f"{item.tenant}|u{item.user}|{seq}|".encode()
        payload = head + b"." * max(0, item.request.size - len(head))
        offered += 1
        resp = service.handle(ServiceRequest(
            operation="write", tenant=item.tenant,
            params={"payload": payload,
                    "retention_seconds": item.request.retention},
            request_id=f"w{seq}"))
        if resp.status == 201:
            accepted += 1
            ledger[resp.body["locator"]] = payload
        elif resp.status == 202:
            deferred += 1
            open_tickets[resp.body["ticket"]] = (item.tenant, payload)
        else:
            rejected += 1
            if not well_formed_rejection(resp):
                print(f"MALFORMED REJECTION: {resp.to_dict()}",
                      file=sys.stderr)
                return 2

    # Drain: commit every pending group, then redeem every ticket.
    service.flush()
    for ticket, (tenant, payload) in sorted(open_tickets.items()):
        resp = patient(ServiceRequest(operation="redeem", tenant=tenant,
                                      params={"ticket": ticket}))
        if resp.status != 200:
            print(f"UNREDEEMED TICKET {ticket}: {resp.to_dict()}",
                  file=sys.stderr)
            return 2
        ledger[resp.body["locator"]] = payload

    unreadable = 0
    for locator, payload in sorted(ledger.items()):
        tenant = locator.split("/", 1)[0]
        resp = patient(ServiceRequest(operation="read", tenant=tenant,
                                      params={"locator": locator}))
        if resp.status != 200 or resp.body["payload"] != payload:
            unreadable += 1

    isolation_ok = True
    if args.tenants >= 2 and ledger:
        victim = next(iter(sorted(ledger)))
        intruder = next(n for n in names if n != victim.split("/", 1)[0])
        resp = patient(ServiceRequest(operation="read", tenant=intruder,
                                      params={"locator": victim}))
        isolation_ok = (resp.status == 404 and resp.problem is not None
                        and resp.problem.code == "tenant-isolation")

    problems = service.reconcile()
    if store.pending_count or len(ledger) != accepted + deferred:
        problems.append(
            f"ledger holds {len(ledger)} locators for {accepted} accepted "
            f"+ {deferred} deferred writes "
            f"({store.pending_count} still pending)")
    if malformed:
        problems.extend(f"malformed rejection: {entry}"
                        for entry in malformed[:5])
    if not rejected_codes and args.burst_rate > args.tenants * args.rate:
        problems.append("overload burst produced no rejections to check")

    stats = service.stats()
    rows = [[name,
             str(s["requests"]), str(s["accepted"]), str(s["deferred"]),
             str(s["redeemed"]), str(s["rejected"]),
             str(s["durable_records"]), str(s["pending_deferred"])]
            for name, s in ((n, stats[n]) for n in names)]
    print(format_table(
        ["tenant", "requests", "accepted", "deferred", "redeemed",
         "rejected", "durable", "pending"], rows,
        title=f"Tenant bench — {args.tenants} tenants (Zipf "
              f"{args.skew:g}), {args.users:,} users each, "
              f"{args.shards} shards, burst {args.burst_rate:g}/s vs "
              f"admission {args.rate:g}/s/tenant"))
    print(f"\noffered:   {offered} writes over {current:.0f}s virtual "
          f"({args.days} day(s))")
    print(f"admitted:  {accepted} immediate + {deferred} deferred "
          f"(all {len(ledger)} durable+verified), {rejected} rejected")
    if rejected_codes:
        breakdown = ", ".join(f"{code}={count}" for code, count
                              in sorted(rejected_codes.items()))
        print(f"rejections: {breakdown} "
              f"(all well-formed: coded problem + RateLimit headers)")
    print(f"isolation: cross-tenant probe "
          f"{'refused (404 tenant-isolation)' if isolation_ok else 'LEAKED'}")
    if unreadable:
        print(f"RECORD LOSS: {unreadable} admitted writes unreadable",
              file=sys.stderr)
    for problem in problems:
        print(f"RECONCILE: {problem}", file=sys.stderr)
    if unreadable or problems or not isolation_ok:
        return 2
    print("zero dropped writes; telemetry reconciles")
    return 0


def cmd_serve(args) -> int:
    """Serve the versioned contract as JSON lines on stdin/stdout.

    A demo transport for the in-process service layer: each input line
    is one ``ServiceRequest`` dict (payload bytes as
    ``{"$bytes": base64}``), each output line the matching
    ``ServiceResponse``.  The store is in-memory and wall-clock timed;
    persistence would wire the same service over a directory store.
    """
    from repro import demo_keyring
    from repro.core.config import StoreConfig
    from repro.core.sharded import ShardedWormStore
    from repro.service import (PROTOCOL_VERSION, BadRequestError,
                               ServiceRequest, TenantConfig, WormService,
                               problem_from_error)

    names = [name.strip() for name in args.tenants.split(",") if name.strip()]
    if not names:
        print("serve: need at least one tenant name", file=sys.stderr)
        return 2
    store = ShardedWormStore.build(
        shard_count=args.shards, keyring=demo_keyring(), clock=SystemClock(),
        config=StoreConfig(shard_count=args.shards, group_commit_size=4))
    ca = CertificateAuthority(bits=512)
    service = WormService(store, ca=ca, tenants=[
        TenantConfig(name, rate=args.rate, burst=args.burst_tokens,
                     max_deferred=args.max_deferred) for name in names])
    print(f"serve: protocol v{PROTOCOL_VERSION}, {args.shards} shards, "
          f"tenants {', '.join(names)}; one JSON request per line",
          file=sys.stderr)
    try:
        for line in sys.stdin:
            line = line.strip()
            if not line:
                continue
            try:
                request = ServiceRequest.from_dict(json.loads(line))
            except (ValueError, TypeError) as exc:
                problem = problem_from_error(
                    BadRequestError(f"unparseable request: {exc}"))
                print(json.dumps({"status": problem.status, "headers": {},
                                  "problem": problem.to_dict(),
                                  "request_id": None}), flush=True)
                continue
            print(json.dumps(service.handle(request).to_dict()), flush=True)
    except BrokenPipeError:
        return 0  # reader went away; nothing left to answer
    service.flush()
    return 0


def cmd_auth_ablation(args) -> int:
    """Three-way authentication-scheme ablation → committed artifacts.

    Sweeps every (or each ``--scheme``-selected) backend through
    :func:`repro.sim.ablation.run_auth_ablation` and writes one
    ``BENCH_ablation_auth_<scheme>.json`` per scheme.  The sweep runs in
    virtual time on demo 512-bit keys, so the artifacts are
    deterministic across machines — which is what makes ``--check``
    (regenerate and diff against the committed files, exit 2 on drift)
    a meaningful CI gate.
    """
    from repro import demo_keyring
    from repro.sim.ablation import run_auth_ablation

    schemes = args.scheme or ["windows", "merkle", "accumulator"]
    sizes = [int(part) for part in args.sizes.split(",") if part.strip()]
    keyring = demo_keyring()
    out_dir = Path(args.out_dir)
    drifted = []
    rows = []
    for scheme in schemes:
        sweep = run_auth_ablation(scheme, keyring, sizes=sizes)
        rendered = json.dumps(sweep, indent=2, sort_keys=True) + "\n"
        path = out_dir / f"BENCH_ablation_auth_{scheme}.json"
        if args.check:
            if not path.exists() or path.read_text() != rendered:
                drifted.append(path.name)
        else:
            path.write_text(rendered)
        for point in sweep["points"]:
            rows.append([
                scheme, str(point["store_size"]),
                f"{point['scpu_seconds_per_write'] * 1e6:.0f}",
                f"{point['read_seconds'] * 1e3:.2f}",
                str(int(point["proof_bytes"])),
                str(int(point["state_bytes"])),
            ])
    print(format_table(
        ["scheme", "store size", "SCPU µs/write", "read ms", "proof B",
         "state B"],
        rows, title="Authentication-scheme ablation (virtual time)"))
    if args.check:
        if drifted:
            print(f"DRIFT: {', '.join(drifted)} differ from the cost "
                  f"model; regenerate with `make auth-ablation`",
                  file=sys.stderr)
            return 2
        print(f"committed artifacts match the cost model "
              f"({len(schemes)} scheme(s))")
    else:
        print(f"wrote {len(schemes)} artifact(s) to {out_dir}/")
    return 0


def cmd_perf(args) -> int:
    """Regenerate (or band-check) the hot-path perf baselines.

    Runs :mod:`repro.perf` — the shard-bench scaling table, a reduced
    Figure 1 sweep, and the read+verify path — and writes
    ``BENCH_shard.json`` / ``BENCH_figure1.json`` / ``BENCH_read.json``.
    All numbers are virtual-time and deterministic, so ``--check``
    (regenerate and compare with a ±10% tolerance band: throughput may
    not drop, crossings may not grow; exit 2 on regression) is a
    meaningful CI gate.
    """
    from repro import perf

    out_dir = Path(args.out_dir)
    if args.check:
        results = perf.check_baselines(out_dir, tolerance=args.tolerance)
        failed = False
        for name in perf.BASELINE_NAMES:
            problems = results.get(name, [])
            if problems:
                failed = True
                print(f"REGRESSION: {name}", file=sys.stderr)
                for problem in problems:
                    print(f"  {problem}", file=sys.stderr)
            else:
                print(f"{name}: within the ±{args.tolerance:.0%} band")
        if failed:
            print("perf gate failed; if the change is intentional, "
                  "re-baseline with `make perf`", file=sys.stderr)
            return 2
        return 0
    written = perf.write_baselines(out_dir)
    data = json.loads((out_dir / "BENCH_shard.json").read_text())
    rows = [[str(p["shards"]), str(p["batch"]), f"{p['writes_per_sec']:.0f}",
             str(p["scpu_crossings"])]
            for p in data["points"] + [data["headline"]]]
    print(format_table(
        ["shards", "batch", "writes/s", "SCPU crossings"], rows,
        title="Hot-path baseline — sharded writes (virtual time)"))
    read = json.loads((out_dir / "BENCH_read.json").read_text())
    print(f"\nread path: {read['reads_per_sec']:.0f} verified reads/s, "
          f"{read['read_scpu_crossings']} SCPU crossings, "
          f"sig-cache {read['sig_cache_hits']}/"
          f"{read['sig_cache_hits'] + read['sig_cache_misses']} hits")
    print(f"wrote {len(written)} artifact(s) to {out_dir}/")
    return 0


def cmd_report(args) -> int:
    from repro.core.report import generate_report
    root, store, fs, ca = _open(args.directory)
    client = store.make_client(ca)
    # Persistent stores run on the system clock, so the store's "virtual"
    # time *is* the calendar — pass it as the report's wall stamp.
    report = generate_report(store, client, wall_time=store.now)
    print(report.text)
    if report.verdict == "FAIL":
        return 2
    return 0


# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Strong WORM compliance store (ICDCS 2008 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("init", help="initialize a store directory")
    p.add_argument("directory")
    p.add_argument("--strong-bits", type=int, default=1024,
                   help="modulus size for the durable SCPU keys")
    p.set_defaults(func=cmd_init)

    p = sub.add_parser("write", help="commit a file as one WORM record")
    p.add_argument("directory")
    p.add_argument("file")
    p.add_argument("--policy", default="default")
    p.add_argument("--retention-years", type=float, default=None)
    p.add_argument("--strength", default=Strength.STRONG,
                   choices=[Strength.STRONG, Strength.WEAK, Strength.HMAC])
    p.set_defaults(func=cmd_write)

    p = sub.add_parser("cat", help="read + verify a record by SN")
    p.add_argument("directory")
    p.add_argument("sn", type=int)
    p.set_defaults(func=cmd_cat)

    p = sub.add_parser("fs-put", help="write a file into the WORM namespace")
    p.add_argument("directory")
    p.add_argument("path", help="absolute WORM-fs path, e.g. /ledger/q3.csv")
    p.add_argument("file", help="local file to ingest")
    p.add_argument("--policy", default=None,
                   help="bind this policy to the parent directory first")
    p.add_argument("--append", action="store_true")
    p.set_defaults(func=cmd_fs_put)

    p = sub.add_parser("fs-cat", help="read + verify a WORM-fs file")
    p.add_argument("directory")
    p.add_argument("path")
    p.add_argument("--version", type=int, default=None)
    p.set_defaults(func=cmd_fs_cat)

    p = sub.add_parser("fs-ls", help="list a WORM-fs directory")
    p.add_argument("directory")
    p.add_argument("path", nargs="?", default="/")
    p.set_defaults(func=cmd_fs_ls)

    p = sub.add_parser("fs-history",
                       help="full version history of a WORM-fs path")
    p.add_argument("directory")
    p.add_argument("path")
    p.set_defaults(func=cmd_fs_history)

    p = sub.add_parser("status", help="compliance overview")
    p.add_argument("directory")
    p.set_defaults(func=cmd_status)

    p = sub.add_parser("maintain", help="run one idle-period maintenance slice")
    p.add_argument("directory")
    p.set_defaults(func=cmd_maintain)

    p = sub.add_parser("audit", help="full verification sweep (exit 2 on tamper)")
    p.add_argument("directory")
    p.set_defaults(func=cmd_audit)

    p = sub.add_parser("report",
                       help="full compliance report (exit 2 on FAIL)")
    p.add_argument("directory")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("shard-bench",
                       help="virtual-time sharded-scaling benchmark "
                            "(in-memory; no store directory needed)")
    p.add_argument("--shards", type=int, default=4)
    p.add_argument("--batch", type=int, default=8,
                   help="group-commit batch size for the batched run")
    p.add_argument("--records", type=int, default=240,
                   help="records per measured run")
    p.add_argument("--record-size", type=int, default=1024)
    p.add_argument("--workers", type=int, default=64,
                   help="closed-loop client concurrency")
    p.set_defaults(func=cmd_shard_bench)

    p = sub.add_parser("faults-demo",
                       help="replay a canned fault plan; exit 2 on record "
                            "loss (in-memory; no store directory needed)")
    p.add_argument("--shards", type=int, default=4)
    p.add_argument("--records", type=int, default=120)
    p.add_argument("--record-size", type=int, default=512)
    p.add_argument("--fault-rate", type=float, default=0.08,
                   help="per-op transient fault probability per shard")
    p.add_argument("--tamper-after", type=int, default=12,
                   help="SCPU ops before shard 1's card zeroizes")
    p.add_argument("--seed", type=int, default=40,
                   help="base RNG seed for the per-shard fault plans")
    p.set_defaults(func=cmd_faults_demo)

    p = sub.add_parser("obs",
                       help="run a short sharded workload, export + "
                            "reconcile its telemetry (in-memory; exit 2 "
                            "on mismatch or schema violation)")
    p.add_argument("--shards", type=int, default=2)
    p.add_argument("--records", type=int, default=48)
    p.add_argument("--record-size", type=int, default=512)
    p.add_argument("--fault-rate", type=float, default=0.05,
                   help="per-op transient fault probability per shard")
    p.add_argument("--tamper-after", type=int, default=0,
                   help="SCPU ops before shard 1's card zeroizes "
                        "(0 = no tamper)")
    p.add_argument("--seed", type=int, default=71,
                   help="base RNG seed for the per-shard fault plans")
    p.add_argument("--format", default="summary",
                   choices=["summary", "snapshot", "jsonl", "prom", "chrome"])
    p.add_argument("--out", default=None,
                   help="write the export here instead of stdout")
    p.add_argument("--check", default=None, metavar="SCHEMA",
                   help="validate the snapshot against this JSON schema")
    p.set_defaults(func=cmd_obs)

    p = sub.add_parser("recover",
                       help="site-loss recovery drill: replicate to a "
                            "standby, kill the site mid-stream, rebuild "
                            "with verified recovery; exit 2 on loss, "
                            "laundered tamper, or RTO breach (in-memory)")
    p.add_argument("--shards", type=int, default=2)
    p.add_argument("--records", type=int, default=400)
    p.add_argument("--record-size", type=int, default=64)
    p.add_argument("--group-commit", type=int, default=8)
    p.add_argument("--fault-rate", type=float, default=0.05,
                   help="transient loss rate on the replication WAN")
    p.add_argument("--link-bandwidth", type=float, default=1e6,
                   help="recovery download bandwidth (bytes/s, virtual)")
    p.add_argument("--rto-bound", type=float, default=1800.0,
                   help="virtual-seconds recovery-time objective")
    p.add_argument("--corrupt", action="store_true",
                   help="flip one replicated byte; the drill then "
                        "passes only if recovery raises TamperedError")
    p.add_argument("--seed", type=int, default=7)
    p.set_defaults(func=cmd_recover)

    p = sub.add_parser("tenant-bench",
                       help="open-loop multi-tenant service benchmark in "
                            "virtual time; exit 2 on lost writes or "
                            "telemetry mismatch (in-memory)")
    p.add_argument("--shards", type=int, default=2)
    p.add_argument("--tenants", type=int, default=3)
    p.add_argument("--days", type=int, default=1)
    p.add_argument("--hour-seconds", type=float, default=2.0,
                   help="virtual seconds per diurnal 'hour' (compresses "
                        "the day; rates stay per-second)")
    p.add_argument("--night-rate", type=float, default=0.5)
    p.add_argument("--day-rate", type=float, default=2.0)
    p.add_argument("--burst-rate", type=float, default=40.0,
                   help="end-of-day burst arrival rate (set above "
                        "tenants*rate to exercise deferral)")
    p.add_argument("--burst-seconds", type=float, default=6.0)
    p.add_argument("--rate", type=float, default=4.0,
                   help="per-tenant sustained admission rate (tokens/s)")
    p.add_argument("--burst-tokens", type=int, default=8,
                   help="per-tenant token-bucket depth")
    p.add_argument("--max-deferred", type=int, default=48,
                   help="per-tenant deferred-backlog cap (beyond it: "
                        "429 backlog-full)")
    p.add_argument("--record-size", type=int, default=256)
    p.add_argument("--skew", type=float, default=1.1,
                   help="Zipf skew of tenant popularity")
    p.add_argument("--users", type=int, default=1_000_000,
                   help="simulated end users per tenant")
    p.add_argument("--group-commit", type=int, default=8)
    p.add_argument("--flush-interval", type=float, default=5.0,
                   help="virtual seconds between forced group commits")
    p.add_argument("--seed", type=int, default=11)
    p.set_defaults(func=cmd_tenant_bench)

    p = sub.add_parser("serve",
                       help="JSON-lines service transport on stdin/stdout "
                            "(in-memory demo store)")
    p.add_argument("--shards", type=int, default=2)
    p.add_argument("--tenants", default="default",
                   help="comma-separated tenant names")
    p.add_argument("--rate", type=float, default=100.0)
    p.add_argument("--burst-tokens", type=int, default=200)
    p.add_argument("--max-deferred", type=int, default=256)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("auth-ablation",
                       help="windows/merkle/accumulator ablation sweep; "
                            "writes BENCH_ablation_auth_<scheme>.json "
                            "(in-memory, virtual time, deterministic)")
    p.add_argument("--scheme", action="append", default=None,
                   choices=["windows", "merkle", "accumulator"],
                   help="sweep only this backend (repeatable; default all)")
    p.add_argument("--sizes", default="32,128,512",
                   help="comma-separated prefill sizes per sample point")
    p.add_argument("--out-dir", default="benchmarks",
                   help="directory receiving the BENCH_*.json artifacts")
    p.add_argument("--check", action="store_true",
                   help="regenerate and diff against the committed "
                        "artifacts instead of writing; exit 2 on drift")
    p.set_defaults(func=cmd_auth_ablation)

    p = sub.add_parser("perf",
                       help="hot-path perf baselines: shard scaling, "
                            "figure-1 subset, read path; writes "
                            "BENCH_shard/figure1/read.json "
                            "(virtual time, deterministic)")
    p.add_argument("--out-dir", default="benchmarks",
                   help="directory receiving the BENCH_*.json baselines")
    p.add_argument("--check", action="store_true",
                   help="regenerate and band-compare against the committed "
                        "baselines instead of writing; exit 2 on regression")
    p.add_argument("--tolerance", type=float, default=0.10,
                   help="relative regression band for --check "
                        "(default 0.10 = ±10%%)")
    p.set_defaults(func=cmd_perf)

    p = sub.add_parser("attest",
                       help="signed SCPU state snapshot; chain with --previous")
    p.add_argument("directory")
    p.add_argument("--out", default=None,
                   help="write the attestation JSON here for later chaining")
    p.add_argument("--previous", default=None,
                   help="verify monotonicity against a saved attestation")
    p.set_defaults(func=cmd_attest)

    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
