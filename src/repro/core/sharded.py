"""Sharded group-commit front-end: many stores, one surface (§4.3 + §5).

The paper's throughput analysis (§4.3, Figure 1) shows that SCPU work
per record — not disk — bounds write throughput, and §5 answers with
hardware parallelism: "results naturally scale if multiple SCPUs are
available."  :class:`ShardedWormStore` is that scaling layer grown to
production shape: it partitions writes across N independent
:class:`~repro.core.worm.StrongWormStore` shards (each backed by its own
:class:`~repro.hardware.device.ScpuLike` trust anchor — a dedicated
card, or one drawn from an :class:`~repro.hardware.pool.ScpuPool`) and
adds a **group-commit batching pipeline**: incoming records accumulate
into per-shard batches and flush as single multi-record ``write()``
calls, so the per-update SCPU witnessing cost (two signatures) is
amortized across the batch exactly as §4.3's deferred-strength bursts
amortize signature strength.

Identity across shards
----------------------
Each shard keeps its own SCPU serial-number space, so a record is named
by a :class:`RecordLocator` ``(shard_id, sn, record_index)`` — the
stable locator every :class:`ShardedWriteReceipt` carries and every read
routes by.  ``record_index`` selects the record inside a group-committed
multi-record VR (0 for unbatched writes).

Verification is unchanged — and that is the point.  A client bootstrapped
by :meth:`ShardedWormStore.make_client` holds the union of the shards'
certified keys; a read of ``locator`` is served by shard ``shard_id``
with that shard's ordinary proofs and is verified with the ordinary
:meth:`~repro.core.client.WormClient.verify_read`.  Per-shard
verification stays O(1) under partitioning: no cross-shard structure
exists for an insider to splice, and tampering inside one shard is
detected by that shard's proofs without touching its siblings.

Failure domains & degraded mode
-------------------------------
Each shard's SCPU is an independent failure domain, tracked by a
:class:`~repro.core.health.CircuitBreaker`.  Transient faults open the
breaker (writes route around the shard until a cooldown); a tamper trip
— the paper's zeroization — is terminal: the shard becomes
**read-only-degraded**, serving every stored proof forever but never
witnessing another write.  Committing work fails over to healthy shards
(the keys live in every enclosure when shards share a keyring, so
receipts stay verifiable), and only when *every* card is gone does the
front-end fail loud with :class:`TamperedError`.  An optional
:class:`~repro.storage.journal.IntentJournal` makes the group-commit
pending queue crash-durable: journalled-but-unflushed records are
re-queued on construction.

The front-end itself is *untrusted main-CPU code*, like the stores it
wraps: nothing about its routing tables, breakers, or journal provides
security, and a lost locator map costs availability, never integrity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Callable, Dict, Iterator, List, Optional, Sequence,
                    Tuple, TypeVar, Union)

from repro.core.client import WormClient
from repro.core.config import StoreConfig
from repro.core.errors import (
    CrashError,
    DegradedError,
    JournalError,
    ShardRoutingError,
    TamperedError,
    TransientFaultError,
    WormError,
)
from repro.core.health import CircuitBreaker, SiteState
from repro.core.locator import RecordLocator, resolve_locator
from repro.core.proofs import ReadResult
from repro.core.retry import RetryStats
from repro.core.worm import StrongWormStore, WriteReceipt
from repro.crypto.keys import Certificate, CertificateAuthority
from repro.hardware.pool import ScpuPool
from repro.hardware.scpu import ScpuKeyring, SecureCoprocessor
from repro.obs.bus import NULL_BUS
from repro.sim.manual_clock import ManualClock
from repro.storage.journal import IntentJournal
from repro.storage.vrd import VirtualRecordDescriptor

__all__ = ["RecordLocator", "ShardedWriteReceipt", "ShardedWormStore"]

#: Locator value accepted anywhere the front-end routes by record: a
#: :class:`RecordLocator`, a receipt, a packed string (``"2:41:0"``), or
#: a raw ``(shard_id, sn)`` / ``(shard_id, sn, record_index)`` tuple.
#: (:class:`RecordLocator` itself now lives in :mod:`repro.core.locator`
#: and is re-exported here for back-compat.)
LocatorLike = Union["RecordLocator", "ShardedWriteReceipt", str,
                    Tuple[int, int], Tuple[int, int, int]]

_T = TypeVar("_T")


@dataclass(frozen=True)
class ShardedWriteReceipt:
    """What a sharded write returns: routing plus the cost breakdown.

    ``costs`` is the per-device virtual-cost breakdown attributable to
    *this record*: for an unbatched write it is the underlying
    :class:`~repro.core.worm.WriteReceipt.costs` verbatim; for a
    group-committed record it is the flush's breakdown divided evenly
    over the ``batch_size`` records that shared the SCPU witnessing —
    the amortization §4.3 is about, made visible per record.
    """

    shard_id: int
    sn: int
    vrd: VirtualRecordDescriptor
    strength: str
    costs: Dict[str, float] = field(default_factory=dict)
    record_index: int = 0
    batch_size: int = 1

    @property
    def locator(self) -> RecordLocator:
        return RecordLocator(shard_id=self.shard_id, sn=self.sn,
                             record_index=self.record_index)

    @property
    def total_cost(self) -> float:
        return sum(self.costs.values())


def _group_key(kwargs: Dict) -> Tuple:
    """Hashable identity of a write-parameter set (batch compatibility)."""
    return tuple(sorted(kwargs.items()))


@dataclass
class _PendingGroup:
    """Records awaiting one group-commit flush on one shard.

    ``entry_ids`` parallels ``payloads``: the intent-journal id of each
    record (``None`` when no journal is attached), acknowledged when the
    group commits.  ``tags`` parallels them too: the caller's opaque
    correlation handle for each record (``None`` when untracked), paired
    with its receipt when the group commits — the mechanism that lets a
    service hand out 202-style deferred receipts and redeem them later.
    """

    kwargs: Dict
    payloads: List[bytes] = field(default_factory=list)
    entry_ids: List[Optional[int]] = field(default_factory=list)
    tags: List[Optional[object]] = field(default_factory=list)

    def __post_init__(self) -> None:
        # Groups built from a bare payload list (write_batch) carry no
        # correlation state; pad so the three lists stay parallel.
        while len(self.entry_ids) < len(self.payloads):
            self.entry_ids.append(None)
        while len(self.tags) < len(self.payloads):
            self.tags.append(None)

    def add(self, payload: bytes, entry_id: Optional[int],
            tag: Optional[object] = None) -> None:
        self.payloads.append(bytes(payload))
        self.entry_ids.append(entry_id)
        self.tags.append(tag)

    def restore_front(self, other: "_PendingGroup") -> None:
        """Put *other*'s records back ahead of this group's (oldest first)."""
        self.payloads[:0] = other.payloads
        self.entry_ids[:0] = other.entry_ids
        self.tags[:0] = other.tags


class ShardedWormStore:
    """N Strong WORM shards behind one store surface, with group commit.

    Construct over existing stores (``ShardedWormStore(stores)``) or let
    :meth:`build` provision ``shard_count`` shards from one
    :class:`~repro.core.config.StoreConfig`.  The single-store surface —
    ``write`` / ``read`` / ``expire_record`` / ``maintenance`` /
    ``make_client`` — carries over; ``submit``/``flush`` and
    :meth:`write_batch` expose the group-commit pipeline.
    """

    def __init__(self, stores: Sequence[StrongWormStore],
                 config: Optional[StoreConfig] = None,
                 journal: Optional[IntentJournal] = None) -> None:
        if not stores:
            raise ValueError("a sharded store needs at least one shard")
        self._stores: List[StrongWormStore] = list(stores)
        self.config = config if config is not None else StoreConfig(
            shard_count=len(self._stores))
        self.obs = (self.config.observe if self.config.observe is not None
                    else NULL_BUS)
        self._next_shard = 0
        self._maintenance_cursor = 0
        # pending[shard_id] holds per-parameter-set groups, oldest first.
        self._pending: List[Dict[Tuple, _PendingGroup]] = [
            {} for _ in self._stores]
        # One circuit breaker per shard: the failure-domain health latch.
        self._breakers: List[CircuitBreaker] = [
            CircuitBreaker(
                failure_threshold=self.config.breaker_failure_threshold,
                cooldown_seconds=self.config.breaker_cooldown_seconds,
                obs=self.obs, label=f"shard{shard_id}")
            for shard_id in range(len(self._stores))]
        self._failover_count = 0
        if self.obs.enabled:
            for name in ("sharded.group_commits", "sharded.failovers",
                         "sharded.flushes", "sharded.groups_restored"):
                self.obs.declare_counter(name)
            self.obs.declare_histogram("sharded.batch_size",
                                       buckets=(1, 2, 4, 8, 16, 32, 64))
            self.obs.register_gauge("sharded.pending_records",
                                    lambda: float(self.pending_count))
        # tag -> receipt for group-committed records submitted with a
        # correlation tag; drained by take_tagged_receipts().
        self._tagged_receipts: Dict[object, ShardedWriteReceipt] = {}
        # Whole-site lifecycle: ACTIVE serves normally; RECOVERING means
        # a SiteRecovery pass is rebuilding this site and the service
        # layer refuses external writes (503 + Retry-After).
        self._site_state = SiteState.ACTIVE
        self._journal = journal if journal is not None else self.config.journal
        if self._journal is not None:
            # Crash recovery: re-queue every journalled-but-unflushed
            # record (tags included, so deferred tickets survive the
            # restart).  Replay only queues — the caller decides when
            # to flush, exactly as the crashed process would have.
            for entry in self._journal.replay():
                self._enqueue(entry.payload, entry.kwargs, entry.entry_id,
                              entry.tag)

    # ------------------------------------------------------------ construction

    @classmethod
    def build(cls, shard_count: Optional[int] = None,
              config: Optional[StoreConfig] = None,
              keyring: Optional[ScpuKeyring] = None,
              clock: Optional[object] = None,
              pool: Optional[ScpuPool] = None,
              journal: Optional[IntentJournal] = None,
              **scpu_kwargs) -> "ShardedWormStore":
        """Provision a sharded store from scratch.

        Each shard gets its own :class:`SecureCoprocessor` — all sharing
        one *keyring* (so one certificate set verifies every shard, as
        with :class:`~repro.hardware.pool.ScpuPool` cards) and one
        *clock* (so retention and freshness share a timeline).  Pass an
        existing *pool* to draw one card per shard from it instead;
        the pool's size then fixes the shard count.  A *journal* (or
        ``config.journal``) makes the pending queue crash-durable and is
        replayed before the store accepts new work.
        """
        config = config if config is not None else StoreConfig()
        if journal is not None:
            config = config.replace(journal=journal)
        if shard_count is None:
            shard_count = pool.size if pool is not None else config.shard_count
        if shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        if pool is not None:
            if pool.size < shard_count:
                raise ValueError(
                    f"pool has {pool.size} cards; {shard_count} shards asked")
            scpus: Sequence[object] = pool.cards[:shard_count]
        else:
            if keyring is None:
                keyring = ScpuKeyring.generate()
            if clock is None:
                clock = ManualClock()
            scpus = [SecureCoprocessor(keyring=keyring, clock=clock,
                                       **scpu_kwargs)
                     for _ in range(shard_count)]
        template = config.per_shard()
        stores = [StrongWormStore(config=template.replace(scpu=scpu))
                  for scpu in scpus]
        return cls(stores, config=config.replace(shard_count=shard_count))

    # ---------------------------------------------------------------- topology

    @property
    def shard_count(self) -> int:
        return len(self._stores)

    @property
    def shards(self) -> Tuple[StrongWormStore, ...]:
        return tuple(self._stores)

    @property
    def now(self) -> float:
        return self._stores[0].now

    def shard(self, shard_id: int) -> StrongWormStore:
        if not 0 <= shard_id < len(self._stores):
            raise ShardRoutingError(
                f"shard {shard_id} does not exist "
                f"(store has {len(self._stores)} shards)")
        return self._stores[shard_id]

    def _resolve(self, locator: LocatorLike) -> RecordLocator:
        resolved = resolve_locator(locator)
        self.shard(resolved.shard_id)  # raises on out-of-range shards
        return resolved

    def _pick_shard(self) -> int:
        """Next write-eligible shard, round-robin over healthy domains.

        Open-breaker shards are skipped until their cooldown elapses;
        degraded (zeroized) shards are skipped forever.  When no shard
        currently allows writes but some are merely open, the next
        non-degraded shard is used anyway (a forced probe — better one
        risky attempt than refusing an ingest).  When every card is
        gone, fail loud.
        """
        n = len(self._stores)
        now = self.now
        for _ in range(n):
            shard_id = self._next_shard % n
            self._next_shard += 1
            if self._breakers[shard_id].allows_writes(now):
                return shard_id
        for _ in range(n):
            shard_id = self._next_shard % n
            self._next_shard += 1
            if not self._breakers[shard_id].degraded:
                return shard_id
        raise TamperedError(
            "every shard's SCPU has been destroyed; the store is read-only")

    def _next_candidate(self, exclude: Sequence[int]) -> Optional[int]:
        """Failover target: a writable shard not yet tried, else any
        non-degraded one (forced probe), else None."""
        now = self.now
        candidates = [i for i in range(len(self._stores)) if i not in exclude]
        for shard_id in candidates:
            if self._breakers[shard_id].allows_writes(now):
                return shard_id
        for shard_id in candidates:
            if not self._breakers[shard_id].degraded:
                return shard_id
        return None

    def _with_failover(self, shard_id: int,
                       commit: Callable[[int], "_T"]) -> "_T":
        """Run *commit* against *shard_id*, failing over across shards.

        Transient faults (retry budget already exhausted inside the
        shard store) count against the shard's breaker; a tamper trip
        marks it degraded for good.  Either way the work moves to the
        next candidate shard.  When every shard has been tried: if all
        are degraded the store is dead — :class:`TamperedError` — else
        the last failure propagates for the caller to restore state.
        """
        tried: List[int] = []
        current = shard_id
        last_exc: Optional[WormError] = None
        while True:
            breaker = self._breakers[current]
            if breaker.degraded:
                if last_exc is None:
                    last_exc = DegradedError(
                        f"shard {current} is read-only (SCPU zeroized)")
            else:
                try:
                    result = commit(current)
                except TamperedError as exc:  # wormlint: disable=W004 - escalates via breaker; re-raised when all shards fail
                    breaker.record_permanent_failure(self.now)
                    last_exc = exc
                except TransientFaultError as exc:
                    breaker.record_transient_failure(self.now)
                    last_exc = exc
                else:
                    breaker.record_success(self.now)
                    if current != shard_id:
                        self._failover_count += 1
                        self.obs.inc("sharded.failovers")
                        self.obs.event("failover", self.now,
                                       from_shard=shard_id, to_shard=current)
                    return result
            tried.append(current)
            nxt = self._next_candidate(tried)
            if nxt is None:
                if all(b.degraded for b in self._breakers):
                    raise TamperedError(
                        "every shard's SCPU has been destroyed; "
                        "the store is read-only") from last_exc
                assert last_exc is not None
                raise last_exc
            current = nxt

    # ------------------------------------------------------------------ writes

    def write(self, records: Sequence[bytes],
              **write_kwargs) -> ShardedWriteReceipt:
        """Commit one virtual record immediately (no batching).

        Same contract as :meth:`StrongWormStore.write` — *records* are
        the physical records of one VR — plus routing: the VR lands on
        the next healthy shard in round-robin order (failing over if
        that shard dies mid-write), and the receipt carries the
        ``(shard_id, sn)`` locator.

        With an intent journal attached, single-payload writes are
        journalled too (append before the commit, locator-carrying
        acknowledgement after), so a replicated journal gives the
        standby site a complete ledger of *every* acknowledged write —
        the direct path included — not just the deferred queue.
        Multi-record VRs and shared-descriptor writes skip the journal
        (their inputs are not journalable payload bytes).
        """
        shard_id = self._pick_shard()
        entry_id = self._journal_direct(records, write_kwargs)

        def commit(target: int) -> ShardedWriteReceipt:
            receipt = self._stores[target].write(records, **write_kwargs)
            return self._wrap(target, receipt, record_index=0, batch_size=1,
                              costs=receipt.costs)

        wrapped = self._with_failover(shard_id, commit)
        if entry_id is not None:
            self._journal.mark_committed([entry_id],
                                         [wrapped.locator.pack()])
        return wrapped

    def _journal_direct(self, records: Sequence[bytes],
                        write_kwargs: Dict) -> Optional[int]:
        """Journal a direct single-payload write, when journalable."""
        if (self._journal is None or len(records) != 1
                or not isinstance(records[0], (bytes, bytearray))):
            return None
        try:
            return self._journal.append(bytes(records[0]),
                                        dict(write_kwargs))
        except JournalError:
            # Non-JSON-safe kwargs (e.g. shared descriptors): the write
            # is synchronous anyway — proceed unjournalled, exactly as
            # this path behaved before journaling was added to it.
            return None

    def _enqueue(self, payload: bytes, kwargs: Dict,
                 entry_id: Optional[int],
                 tag: Optional[object] = None
                 ) -> Tuple[int, Tuple, _PendingGroup]:
        shard_id = self._pick_shard()
        key = _group_key(kwargs)
        group = self._pending[shard_id].setdefault(
            key, _PendingGroup(kwargs=dict(kwargs)))
        group.add(payload, entry_id, tag)
        return shard_id, key, group

    def _restore_group(self, shard_id: int, key: Tuple,
                       group: _PendingGroup) -> None:
        """Put an uncommitted group back in the pending queue (no loss)."""
        existing = self._pending[shard_id].get(key)
        if existing is None:
            self._pending[shard_id][key] = group
        else:
            existing.restore_front(group)
        self.obs.inc("sharded.groups_restored")

    def submit(self, payload: bytes, tag: Optional[object] = None,
               **write_kwargs) -> Optional[List[ShardedWriteReceipt]]:
        """Queue one record for the next group commit (best-effort path).

        The record is journalled (when an intent journal is attached),
        assigned a shard round-robin, and parked with other pending
        records that share its write parameters.  When a shard's pending
        group reaches ``config.group_commit_size`` it flushes
        automatically — failing over to healthy shards if its own SCPU
        has died — and the flushed receipts are returned; otherwise
        returns ``None`` (call :meth:`flush` to force the commit).

        *tag* is an opaque, hashable correlation handle: when the record
        eventually group-commits — on this call, a later :meth:`submit`,
        or a :meth:`flush` — its receipt is filed under the tag for
        :meth:`take_tagged_receipts` to drain.  This is how a front-end
        that acknowledged a deferred write (a 202) later resolves the
        acknowledgement to a durable locator.  Tags are in-memory only:
        after a crash, replayed journal entries re-commit untagged.

        This path never raises :class:`DegradedError`: if the commit
        cannot land anywhere *right now* (every candidate transiently
        failing), the records simply stay queued — and journalled — for
        the next flush.  Only total loss of the trust anchors (every
        card zeroized) raises, with :class:`TamperedError`.
        """
        if not isinstance(payload, (bytes, bytearray)):
            raise TypeError("submit() takes one record payload (bytes)")
        entry_id: Optional[int] = None
        if self._journal is not None:
            try:
                entry_id = self._journal.append(bytes(payload),
                                                dict(write_kwargs), tag=tag)
            except JournalError:
                # Opaque in-memory-only tags are still allowed; they
                # just don't survive a restart (the pre-tag-journal
                # contract).  The payload itself must journal.
                entry_id = self._journal.append(bytes(payload),
                                                dict(write_kwargs))
        shard_id, key, group = self._enqueue(bytes(payload), write_kwargs,
                                             entry_id, tag)
        if len(group.payloads) >= max(1, self.config.group_commit_size):
            del self._pending[shard_id][key]
            try:
                return self._commit_with_failover(shard_id, group)
            except (TamperedError, CrashError):
                # Total trust-anchor loss, or the (injected) death of
                # this very process: both outrank best-effort.
                self._restore_group(shard_id, key, group)
                raise
            except WormError:
                # Best-effort: keep the records queued (and journalled)
                # for the next flush rather than bouncing the ingest.
                self._restore_group(shard_id, key, group)
                return None
        return None

    @property
    def pending_count(self) -> int:
        """Records submitted but not yet group-committed."""
        return sum(len(group.payloads)
                   for shard in self._pending for group in shard.values())

    def flush(self) -> List[ShardedWriteReceipt]:
        """Group-commit every pending record; returns all new receipts.

        Commits one group at a time: a group that cannot land anywhere
        is restored to the pending queue (no record is ever dropped) and
        the flush *continues* with the remaining groups and shards, so
        one sick failure domain cannot hold the others' records hostage.
        The first failure is re-raised at the end, after everything
        committable has committed; receipts of the groups that *did*
        commit ride on the exception as ``partial_receipts``.
        """
        receipts: List[ShardedWriteReceipt] = []
        first_error: Optional[WormError] = None
        self.obs.inc("sharded.flushes")
        for shard_id in range(len(self._stores)):
            groups = self._pending[shard_id]
            for key in list(groups.keys()):
                group = groups.pop(key)
                try:
                    receipts.extend(
                        self._commit_with_failover(shard_id, group))
                except CrashError as exc:
                    # The (injected) process death: stop immediately.
                    self._restore_group(shard_id, key, group)
                    exc.partial_receipts = receipts
                    raise
                except WormError as exc:  # wormlint: disable=W004,W008 - group restored; first_error re-raised below
                    self._restore_group(shard_id, key, group)
                    if first_error is None:
                        first_error = exc
        if first_error is not None:
            first_error.partial_receipts = receipts
            raise first_error
        return receipts

    def write_batch(self, payloads: Sequence[bytes],
                    **write_kwargs) -> List[ShardedWriteReceipt]:
        """Group-commit *payloads* across the shards in one call.

        Each payload is one logical record.  Payloads are split into
        contiguous chunks of up to ``config.group_commit_size`` records,
        and each chunk lands on the next shard round-robin as a single
        multi-record ``write()`` — one SN, one metasig/datasig pair for
        the whole chunk — so SCPU witnessing cost amortizes over the full
        group-commit size rather than thinning out to batch/shard-count
        records per signature.  Concurrent batches (the closed-loop
        drivers issue one per worker) still spread across every shard.
        Receipts come back in input order.  With an intent journal
        attached, each payload is journalled before its commit and
        acknowledged with its locator, like :meth:`submit`.
        """
        if isinstance(payloads, (bytes, bytearray)):
            raise TypeError("pass a sequence of record payloads")
        payloads = list(payloads)
        chunk = max(1, self.config.group_commit_size)
        slots: List[List[bytes]] = [[] for _ in self._stores]
        entry_slots: List[List[Optional[int]]] = [[] for _ in self._stores]
        order: List[Tuple[int, int]] = []  # (shard_id, index-in-shard-batch)
        for start in range(0, len(payloads), chunk):
            shard_id = self._pick_shard()
            for payload in payloads[start:start + chunk]:
                order.append((shard_id, len(slots[shard_id])))
                slots[shard_id].append(payload)
                entry_slots[shard_id].append(
                    self._journal_direct([payload], write_kwargs))
        per_shard: Dict[int, List[ShardedWriteReceipt]] = {}
        for shard_id, batch in enumerate(slots):
            if batch:
                per_shard[shard_id] = self._commit_with_failover(
                    shard_id, _PendingGroup(kwargs=dict(write_kwargs),
                                            payloads=batch,
                                            entry_ids=entry_slots[shard_id]))
        return [per_shard[shard_id][index] for shard_id, index in order]

    def _commit_with_failover(
            self, shard_id: int,
            group: _PendingGroup) -> List[ShardedWriteReceipt]:
        """Commit *group*, moving it to a healthy shard if needed."""
        receipts = self._with_failover(
            shard_id, lambda target: self._commit_group(target, group))
        if self._journal is not None:
            committed = [(entry_id, receipt.locator.pack())
                         for entry_id, receipt in zip(group.entry_ids,
                                                      receipts)
                         if entry_id is not None]
            if committed:
                self._journal.mark_committed(
                    [entry_id for entry_id, _ in committed],
                    [locator for _, locator in committed])
        for tag, receipt in zip(group.tags, receipts):
            if tag is not None:
                self._tagged_receipts[tag] = receipt
        return receipts

    def take_tagged_receipts(self) -> Dict[object, ShardedWriteReceipt]:
        """Drain the tag → receipt map of committed tagged submissions.

        Every record handed to :meth:`submit` with a ``tag`` that has
        since group-committed appears exactly once across successive
        calls; uncommitted tags stay invisible until their group lands.
        """
        taken = self._tagged_receipts
        self._tagged_receipts = {}
        return taken

    def _commit_group(self, shard_id: int,
                      group: _PendingGroup) -> List[ShardedWriteReceipt]:
        """One group commit: a single multi-record write on one shard."""
        receipt = self._stores[shard_id].write(group.payloads, **group.kwargs)
        size = len(group.payloads)
        if self.obs.enabled:
            self.obs.inc("sharded.group_commits")
            self.obs.observe("sharded.batch_size", size,
                             buckets=(1, 2, 4, 8, 16, 32, 64))
        share = {device: cost / size for device, cost in receipt.costs.items()}
        return [self._wrap(shard_id, receipt, record_index=index,
                           batch_size=size, costs=dict(share))
                for index in range(size)]

    def _wrap(self, shard_id: int, receipt: WriteReceipt, record_index: int,
              batch_size: int, costs: Dict[str, float]) -> ShardedWriteReceipt:
        return ShardedWriteReceipt(
            shard_id=shard_id, sn=receipt.sn, vrd=receipt.vrd,
            strength=receipt.strength, costs=costs,
            record_index=record_index, batch_size=batch_size)

    # ------------------------------------------------------------------- reads

    def read(self, locator: LocatorLike) -> ReadResult:
        """Serve a read (with proof) from the owning shard.

        The result is the shard's ordinary :class:`ReadResult`; verify it
        with ``client.verify_read(result, locator.sn)`` exactly as for a
        single store.
        """
        resolved = self._resolve(locator)
        return self._stores[resolved.shard_id].read(resolved.sn)

    def read_record(self, locator: LocatorLike) -> bytes:
        """The one payload *locator* names (unverified convenience).

        Group-committed VRs hold several records; this routes the read
        and picks ``record_index``.  Auditors should prefer
        :meth:`read` + client verification.
        """
        resolved = self._resolve(locator)
        result = self._stores[resolved.shard_id].read(resolved.sn)
        if result.status != "active":
            raise WormError(
                f"record {resolved.pack()} is not active ({result.status})")
        if resolved.record_index >= len(result.records):
            raise ShardRoutingError(
                f"locator {resolved.pack()} indexes past the VR's "
                f"{len(result.records)} records")
        return result.records[resolved.record_index]

    # ------------------------------------------------------- expiry & lifecycle

    def expire_record(self, locator: LocatorLike, now: float) -> str:
        """Delete a retention-expired VR on its owning shard."""
        resolved = self._resolve(locator)
        return self._stores[resolved.shard_id].expire_record(resolved.sn, now)

    def maintenance(self, strengthen_budget: Optional[int] = None,
                    verify_budget: Optional[int] = None,
                    compact: bool = True) -> Dict[str, int]:
        """One maintenance slice across all shards, merged summary.

        Budgets are *shared*: a budget of B is split over the shards,
        with the remainder going to the shards right after the rotating
        round-robin cursor — so over successive slices every shard gets
        the same share of idle-period SCPU time (§4.2.1's "idle periods"
        are a per-card resource).
        """
        n = len(self._stores)
        start = self._maintenance_cursor % n
        self._maintenance_cursor += 1
        summary: Dict[str, int] = {}
        for offset in range(n):
            shard_id = (start + offset) % n
            if self._breakers[shard_id].degraded:
                # A zeroized card can't strengthen or re-witness anything;
                # its stored proofs stand as-is (§4.2.2).
                continue
            shard_summary = self._stores[shard_id].maintenance(
                strengthen_budget=self._budget_share(
                    strengthen_budget, offset, n),
                verify_budget=self._budget_share(verify_budget, offset, n),
                compact=compact)
            for key, value in shard_summary.items():
                summary[key] = summary.get(key, 0) + value
        return summary

    @staticmethod
    def _budget_share(budget: Optional[int], offset: int,
                      shards: int) -> Optional[int]:
        if budget is None:
            return None
        share, remainder = divmod(budget, shards)
        return share + (1 if offset < remainder else 0)

    def advance_clocks(self, seconds: float) -> None:
        """Advance every shard's (manual) clock; shared clocks tick once."""
        seen: List[int] = []
        for store in self._stores:
            clock = store.scpu.clock
            if id(clock) in seen:
                continue
            seen.append(id(clock))
            clock.advance(seconds)

    # ------------------------------------------------------------------ health

    @property
    def site_state(self) -> str:
        """Whole-site lifecycle state (see :class:`SiteState`)."""
        return self._site_state

    @property
    def recovering(self) -> bool:
        """True while a :class:`repro.recovery.SiteRecovery` pass owns
        this site: reads are served (verifiably, once VERIFY has
        passed), external writes are refused at the service layer."""
        return self._site_state == SiteState.RECOVERING

    def begin_recovery(self) -> None:
        """Mark this site as being rebuilt from a replica.

        Called by :class:`repro.recovery.SiteRecovery` before REPLAY
        starts importing records, so monitoring (``health_report``) and
        the service layer (503 + Retry-After) see the transition.
        Idempotent — a resumed recovery re-enters the same state.
        """
        self._site_state = SiteState.RECOVERING

    def resume_service(self) -> None:
        """Recovery's RESUME stage completed: the site serves writes again."""
        self._site_state = SiteState.ACTIVE

    @property
    def degraded_shards(self) -> Tuple[int, ...]:
        """Shard ids whose SCPU has zeroized (read-only forever)."""
        return tuple(i for i, b in enumerate(self._breakers) if b.degraded)

    @property
    def writable_shards(self) -> Tuple[int, ...]:
        """Shard ids currently accepting writes (closed/half-open)."""
        now = self.now
        return tuple(i for i, b in enumerate(self._breakers)
                     if b.allows_writes(now))

    @property
    def failover_count(self) -> int:
        """Commits that landed on a different shard than first routed."""
        return self._failover_count

    def breaker(self, shard_id: int) -> CircuitBreaker:
        """The circuit breaker tracking *shard_id*'s failure domain."""
        self.shard(shard_id)  # raises on out-of-range shards
        return self._breakers[shard_id]

    def health_report(self) -> Dict[str, object]:
        """Point-in-time health of every failure domain.

        Untrusted operational telemetry: per-shard breaker snapshots,
        tamper status, pending queue depths, and the merged retry-loop
        statistics of all shards.  Safe to call with any number of
        shards degraded — dead cards are reported, not exercised.
        """
        now = self.now
        shards: List[Dict[str, object]] = []
        total_retry = RetryStats()
        for shard_id, store in enumerate(self._stores):
            breaker = self._breakers[shard_id]
            try:
                tripped = bool(store.scpu.tamper.tripped)
            except WormError:  # wormlint: disable=W004 - health report: a dead pool *is* the tripped state
                # A pool whose every card died raises on .tamper access;
                # that *is* a trip for reporting purposes.
                tripped = True
            total_retry.merge(store.retry.stats)
            shards.append({
                "shard_id": shard_id,
                "tamper_tripped": tripped,
                "pending_records": sum(
                    len(g.payloads)
                    for g in self._pending[shard_id].values()),
                "retry": store.retry.stats.as_dict(),
                **breaker.snapshot(now).as_dict(),
            })
        return {
            "shards": shards,
            "auth_scheme": self.config.auth_scheme,
            "site_state": self._site_state,
            "recovering": self.recovering,
            "writable_shards": list(self.writable_shards),
            "degraded_shards": list(self.degraded_shards),
            "failovers": self._failover_count,
            "pending_records": self.pending_count,
            "journal_pending": (self._journal.pending_count()
                                if self._journal is not None else 0),
            "retry_total": total_retry.as_dict(),
        }

    # ------------------------------------------------------------ client setup

    def certificates(self, ca: CertificateAuthority) -> List[Certificate]:
        """The union of every shard's certificates, deduplicated.

        Shards built from one keyring share fingerprints, so this is
        usually exactly one certificate set; independently keyed shards
        contribute their own, and the client trusts the union.
        """
        certs: List[Certificate] = []
        seen: set = set()
        for shard_id, store in enumerate(self._stores):
            if self._breakers[shard_id].degraded:
                # Certification exercises the SCPU; a zeroized card can't
                # sign.  With a shared keyring its siblings cover it.
                continue
            try:
                shard_certs = store.certificates(ca)
            except TamperedError:  # wormlint: disable=W004,W008 - escalates via breaker; raises below when no shard can sign
                # The card died outside any commit path (e.g. during
                # maintenance), so the breaker hasn't heard yet.
                self._breakers[shard_id].record_permanent_failure(self.now)
                continue
            for cert in shard_certs:
                key = (cert.fingerprint, cert.role)
                if key not in seen:
                    seen.add(key)
                    certs.append(cert)
        if not certs and self._stores:
            raise TamperedError(
                "every shard's SCPU has been destroyed; "
                "no certificates can be issued")
        return certs

    def make_client(self, ca: CertificateAuthority, clock=None,
                    freshness_window: float = 300.0,
                    accept_unverifiable: bool = False) -> WormClient:
        """One verifying client that can check reads from any shard."""
        return WormClient(
            ca_public_key=ca.root_public_key,
            certificates=self.certificates(ca),
            clock=clock if clock is not None else self._stores[0].scpu.clock,
            freshness_window=freshness_window,
            accept_unverifiable=accept_unverifiable,
        )

    def telemetry_snapshot(self) -> Dict[str, object]:
        """The shared bus's snapshot (empty structure when unobserved)."""
        return self.obs.snapshot()

    # ------------------------------------------------------- cost attribution

    def cost_summary(self) -> Dict[str, float]:
        """Aggregate virtual seconds per device class across all shards."""
        summary = {"scpu": 0.0, "host": 0.0, "disk": 0.0}
        for store in self._stores:
            summary["scpu"] += store.scpu.meter.total_seconds
            summary["host"] += store.host.meter.total_seconds
            summary["disk"] += store.disk.meter.total_seconds
        return summary

    def per_shard_cost_seconds(self) -> List[Dict[str, float]]:
        """Per-shard virtual-cost breakdown (load-balance inspection)."""
        return [{
            "scpu": store.scpu.meter.total_seconds,
            "host": store.host.meter.total_seconds,
            "disk": store.disk.meter.total_seconds,
        } for store in self._stores]

    # -------------------------------------------------------------- iteration

    def __iter__(self) -> Iterator[StrongWormStore]:
        return iter(self._stores)

    def __len__(self) -> int:
        return len(self._stores)
