"""Deferred-strength witnessing (§4.3): absorb bursts, strengthen later.

During update bursts the SCPU cannot keep up with full-strength (1024-bit)
signing, so writes are witnessed with *short-lived* constructs — 512-bit
signatures (breakable only in tens of minutes, far longer than any write
burst) or HMAC tags (instant, but not client-verifiable).  Idle periods
then *strengthen* them: the SCPU verifies its own weak construct and
re-signs the statement with the durable key — and this MUST happen within
the weak construct's security lifetime, or the integrity guarantee lapses.

Two queues implement the idle-time work:

* :class:`StrengtheningQueue` — weak/HMAC-witnessed VRDs ordered by
  strengthening deadline (issue time + lifetime × safety factor);
* :class:`HashVerificationQueue` — VRDs written in the §4.2.2 "slightly
  weaker model" where the host supplied the data hash during the burst;
  the SCPU re-reads the data and verifies the hash during idle time.

Both expose deadline introspection so schedulers (and the benchmarks) can
check the adaptive property: bursts never outlive the security lifetime
of what they were absorbed with.
"""

from __future__ import annotations

import bisect
import heapq
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.obs.bus import NULL_BUS, TelemetryBus

__all__ = ["PendingStrengthening", "StrengtheningQueue", "HashVerificationQueue"]


@dataclass(frozen=True)
class PendingStrengthening:
    """One weak-witnessed VRD awaiting its strong signature."""

    sn: int
    issued_at: float
    lifetime_seconds: float
    safety_factor: float

    @property
    def deadline(self) -> float:
        """Latest safe strengthening time: well inside the lifetime."""
        return self.issued_at + self.lifetime_seconds * self.safety_factor

    @property
    def hard_expiry(self) -> float:
        """When the weak construct's security assumption actually lapses."""
        return self.issued_at + self.lifetime_seconds


class StrengtheningQueue:
    """Deadline-ordered queue of constructs to re-sign with the strong key.

    ``safety_factor`` < 1 front-loads the deadlines (default: strengthen
    by half the lifetime), matching the paper's "within their security
    lifetime" requirement with margin for scheduling jitter.
    """

    def __init__(self, store, safety_factor: float = 0.5,
                 obs: Optional[TelemetryBus] = None) -> None:
        if not 0.0 < safety_factor <= 1.0:
            raise ValueError("safety factor must be in (0, 1]")
        self._store = store
        self.safety_factor = safety_factor
        self.obs = obs if obs is not None else NULL_BUS
        self._heap: List[Tuple[float, int, PendingStrengthening]] = []
        # Gauge-side view of the backlog, maintained incrementally so the
        # telemetry pulls (active_backlog / next_deadline / overdue_count)
        # are O(log n) lookups instead of O(n) sweeps of the heap with a
        # VRDT liveness probe per entry.  Deletions arrive lazily via
        # :meth:`note_deleted` (pushed by the store when a record's
        # deletion proof lands) and are reconciled against the VRDT on
        # every pop and prune, so a missed push self-heals.
        self._live_deadlines: List[float] = []
        self._deadlines_by_sn: Dict[int, List[float]] = {}
        self._counter = 0
        self.strengthened_count = 0
        self.lifetime_violations = 0
        self.skipped_deleted = 0
        # SNs already counted as lifetime violations.  A violation is a
        # property of the *record* (its weak construct outlived its
        # security lifetime unstrengthened), so an entry that fails to
        # strengthen and is restored to the heap must not be counted
        # again on retry.
        self._violated: Set[int] = set()
        if self.obs.enabled:
            self.obs.declare_counter("strengthen.completed")
            self.obs.declare_counter("strengthen.lifetime_violations")
            self.obs.declare_counter("strengthen.skipped_deleted")

    def __len__(self) -> int:
        """Raw heap size, *including* entries whose record has since been
        deleted — the number of pops still needed to drain the queue
        (what scheduling loops budget against)."""
        return len(self._heap)

    def enqueue(self, sn: int, issued_at: float, lifetime_seconds: float) -> None:
        """Register a weak-witnessed write for later strengthening."""
        pending = PendingStrengthening(
            sn=sn,
            issued_at=issued_at,
            lifetime_seconds=lifetime_seconds,
            safety_factor=self.safety_factor,
        )
        self._counter += 1
        heapq.heappush(self._heap, (pending.deadline, self._counter, pending))
        bisect.insort(self._live_deadlines, pending.deadline)
        self._deadlines_by_sn.setdefault(sn, []).append(pending.deadline)

    def _is_live(self, pending: PendingStrengthening) -> bool:
        """Does this entry still protect anything?  Deleted records don't:
        a deletion proof supersedes the data signatures."""
        return self._store.vrdt.is_active(pending.sn)

    def _discard_gauge_entry(self, sn: int, deadline: float) -> None:
        """Drop one (sn, deadline) pair from the gauge view, if present."""
        lst = self._deadlines_by_sn.get(sn)
        if lst is None:
            return
        try:
            lst.remove(deadline)
        except ValueError:
            return
        if not lst:
            del self._deadlines_by_sn[sn]
        idx = bisect.bisect_left(self._live_deadlines, deadline)
        del self._live_deadlines[idx]

    def note_deleted(self, sn: int) -> None:
        """Record that *sn*'s record was deleted: its entries stop counting
        toward the live backlog immediately.  The heap entries themselves
        are removed lazily, on pop or prune."""
        deadlines = self._deadlines_by_sn.pop(sn, None)
        if not deadlines:
            return
        for deadline in deadlines:
            idx = bisect.bisect_left(self._live_deadlines, deadline)
            del self._live_deadlines[idx]

    def _rebuild_gauges(self) -> None:
        """Recompute the gauge view from the heap's live entries."""
        self._live_deadlines = []
        self._deadlines_by_sn = {}
        for deadline, _, pending in self._heap:
            if self._is_live(pending):
                self._live_deadlines.append(deadline)
                self._deadlines_by_sn.setdefault(pending.sn, []).append(deadline)
        self._live_deadlines.sort()

    def active_backlog(self) -> int:
        """Entries whose record is still active (the real strengthening debt)."""
        return len(self._live_deadlines)

    def next_deadline(self) -> Optional[float]:
        """Earliest deadline among *live* entries (None when none remain).

        Entries whose record was deleted are not deadlines — there is
        nothing left to strengthen — so they are skipped, not reported.
        """
        return self._live_deadlines[0] if self._live_deadlines else None

    def overdue_count(self, now: float) -> int:
        """Live entries whose *deadline* (not hard expiry) has passed."""
        return bisect.bisect_right(self._live_deadlines, now)

    def strengthen_next(self, now: float) -> Optional[int]:
        """Strengthen the most urgent entry; returns its SN (None if idle).

        Entries whose record was deleted in the meantime are skipped (a
        deletion proof supersedes the data signatures).  Strengthening a
        construct past its hard expiry is still performed — the signature
        chain remains internally valid — but it is *counted* as a
        lifetime violation, which the security benchmarks assert to be
        zero under correctly provisioned systems.

        If strengthening itself fails — the SCPU dropped the request, or
        tripped tamper response mid-burst — the entry is **restored to
        the queue** before the error propagates: a weak construct must
        never silently leave the backlog without its strong signature
        (that would launder a 512-bit/HMAC witness into apparent full
        strength).  The surviving backlog is inspectable via
        :meth:`report`.
        """
        while self._heap:
            item = heapq.heappop(self._heap)
            pending = item[2]
            if not self._store.vrdt.is_active(pending.sn):
                # Reconcile the gauge view in case the deletion was never
                # pushed via note_deleted (no-op when it was).
                self._discard_gauge_entry(pending.sn, item[0])
                self._drop_deleted()
                continue
            if now > pending.hard_expiry and pending.sn not in self._violated:
                # One violation per record, ever: a retry of the same
                # entry (restored below on failure) is still the same
                # lapsed construct, not a new lapse.
                self._violated.add(pending.sn)
                self.lifetime_violations += 1
                self.obs.inc("strengthen.lifetime_violations")
            try:
                self._store.strengthen_vrd(pending.sn)
            except BaseException:
                heapq.heappush(self._heap, item)
                raise
            self._discard_gauge_entry(pending.sn, item[0])
            self.strengthened_count += 1
            self.obs.inc("strengthen.completed")
            return pending.sn
        return None

    def _drop_deleted(self) -> None:
        """Account for one popped entry whose record was deleted."""
        self.skipped_deleted += 1
        self.obs.inc("strengthen.skipped_deleted")

    def _prune_deleted(self) -> None:
        """Evict (and count) every entry whose record is gone."""
        live = [item for item in self._heap if self._is_live(item[2])]
        dropped = len(self._heap) - len(live)
        if dropped:
            self._heap = live
            heapq.heapify(self._heap)
            for _ in range(dropped):
                self._drop_deleted()
            self._rebuild_gauges()

    def report(self, now: float) -> dict:
        """The strengthening backlog, for health reports and escalation.

        After a tamper trip this is the authoritative list of what never
        got its strong signature — reported, not lost.  Entries whose
        record was deleted in the meantime protect nothing (the deletion
        proof supersedes the data signatures); they are pruned here and
        surfaced via ``skipped_deleted`` rather than padding the backlog.
        """
        self._prune_deleted()
        return {
            "backlog": len(self._heap),
            "overdue": self.overdue_count(now),
            "next_deadline": self.next_deadline(),
            "pending_sns": sorted(p.sn for _, _, p in self._heap),
            "strengthened": self.strengthened_count,
            "lifetime_violations": self.lifetime_violations,
            "skipped_deleted": self.skipped_deleted,
        }

    def drain(self, now: float, max_items: Optional[int] = None) -> int:
        """Strengthen up to *max_items* entries (all, when None)."""
        done = 0
        while self._heap and (max_items is None or done < max_items):
            if self.strengthen_next(now) is None:
                break
            done += 1
        return done


class HashVerificationQueue:
    """Idle-time verification of host-computed data hashes (§4.2.2).

    In burst mode the main CPU may be "trusted to provide datasig's hash
    which will be verified later during idle times".  Until verified, a
    forged hash would let an insider commit bogus data under a valid
    signature — so the window between write and verification is exactly
    the exposure this queue bounds.  Mismatches are recorded and surfaced:
    they are proof of main-CPU misbehaviour during the burst.
    """

    def __init__(self, store, obs: Optional[TelemetryBus] = None) -> None:
        self._store = store
        self.obs = obs if obs is not None else NULL_BUS
        self._pending: Deque[Tuple[float, int]] = deque()  # (written_at, sn)
        self.verified_count = 0
        self.skipped_deleted = 0
        self.mismatches: List[int] = []
        if self.obs.enabled:
            self.obs.declare_counter("hashverify.verified")
            self.obs.declare_counter("hashverify.mismatches")
            self.obs.declare_counter("hashverify.skipped_deleted")

    def __len__(self) -> int:
        return len(self._pending)

    def enqueue(self, sn: int, written_at: float) -> None:
        self._pending.append((written_at, sn))

    def oldest_pending_age(self, now: float) -> float:
        """Age of the oldest unverified hash (the current exposure window)."""
        if not self._pending:
            return 0.0
        return now - self._pending[0][0]

    def verify_next(self) -> Optional[bool]:
        """Verify the oldest pending hash; returns the outcome (None if idle)."""
        while self._pending:
            entry = self._pending.popleft()
            vrd = self._store.vrdt.get_active(entry[1])
            if vrd is None:
                # Deleted meanwhile; nothing left to protect — but the
                # drop is counted, not silent.
                self.skipped_deleted += 1
                self.obs.inc("hashverify.skipped_deleted")
                continue
            try:
                ok = self._store.scpu_verify_data_hash(vrd)
            except BaseException:
                # Same no-laundering rule as strengthening: an unverified
                # host hash stays in the backlog if the SCPU call fails.
                self._pending.appendleft(entry)
                raise
            self.verified_count += 1
            self.obs.inc("hashverify.verified")
            if not ok:
                self.mismatches.append(entry[1])
                self.obs.inc("hashverify.mismatches")
            return ok
        return None

    def drain(self, max_items: Optional[int] = None) -> int:
        """Verify up to *max_items* pending hashes (all, when None)."""
        done = 0
        while self._pending and (max_items is None or done < max_items):
            if self.verify_next() is None:
                break
            done += 1
        return done
