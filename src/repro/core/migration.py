"""Compliant migration between stores (§1: Compliant Migration).

"Retention periods are measured in years ... compliant data migration
mechanisms are required to transfer information from obsolete to new
storage media while preserving the associated security assurances."

The protocol implemented here:

1. **Export** — the source store packages its VRDT snapshot and the
   payloads of all active records; the *source SCPU* signs a migration
   manifest over a canonical hash of the package, plus the record count
   and window bounds, so the package cannot be truncated or padded in
   transit.
2. **Import** — the destination store obtains the source SCPU's
   CA-certified public keys, has its *own SCPU* verify the manifest and
   then every record's metasig/datasig and data hash.  Only records that
   verify are re-witnessed under the destination keys, with their
   original attributes — creation time, retention period, litigation
   holds — preserved, so retention clocks keep running.
3. Records that fail verification are **not migrated silently**: they are
   reported, because a migration is precisely where an insider would try
   to launder altered history into a fresh store.

Expired records do not move: their deletion proofs are evidence about the
*source* store and are archived in the report for audit, not re-issued.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.errors import MigrationError
from repro.core.worm import StrongWormStore
from repro.crypto.envelope import Purpose, SignedEnvelope
from repro.crypto.hashing import ChainedHasher
from repro.crypto.keys import Certificate, CertificateAuthority
from repro.storage.vrd import VirtualRecordDescriptor

__all__ = ["MigrationPackage", "MigrationReport", "export_package", "import_package"]


@dataclass(frozen=True)
class MigrationPackage:
    """Everything that travels from the old store to the new one."""

    vrdt_snapshot: dict
    blocks: Dict[str, bytes]
    manifest: SignedEnvelope
    source_certificates: Tuple[Certificate, ...]


@dataclass
class MigrationReport:
    """Outcome of an import: SN mapping and any verification failures."""

    sn_mapping: Dict[int, int] = field(default_factory=dict)
    migrated: int = 0
    rejected: List[Tuple[int, str]] = field(default_factory=list)
    archived_deletion_proofs: int = 0

    @property
    def clean(self) -> bool:
        """True when every record verified and migrated."""
        return not self.rejected


def _package_hash(vrdt_snapshot: dict, blocks: Dict[str, bytes]) -> bytes:
    """Canonical digest binding the snapshot and every payload byte."""
    hasher = hashlib.sha256()
    hasher.update(json.dumps(vrdt_snapshot, sort_keys=True).encode("utf-8"))
    for key in sorted(blocks):
        hasher.update(key.encode("utf-8"))
        hasher.update(hashlib.sha256(blocks[key]).digest())
    return hasher.digest()


def export_package(store: StrongWormStore,
                   ca: CertificateAuthority) -> MigrationPackage:
    """Snapshot *store* for migration, signed by its SCPU."""
    snapshot = store.vrdt.to_dict()
    blocks: Dict[str, bytes] = {}
    for sn in store.vrdt.active_sns:
        vrd = store.vrdt.get_active(sn)
        assert vrd is not None
        for rd in vrd.rdl:
            if rd.key not in blocks:
                blocks[rd.key] = store.retry.call(
                    "block_store.get", store.blocks.get, rd.key)
                store.disk.read(rd.length)
    manifest = store.scpu_rt.sign_migration_manifest(
        manifest_hash=_package_hash(snapshot, blocks),
        record_count=len(store.vrdt.active_sns),
        sn_base=store.scpu.sn_base,
        sn_current=store.scpu.current_serial_number,
    )
    return MigrationPackage(
        vrdt_snapshot=snapshot,
        blocks=blocks,
        manifest=manifest,
        source_certificates=tuple(store.certificates(ca)),
    )


def import_package(dest: StrongWormStore, package: MigrationPackage,
                   ca: CertificateAuthority) -> MigrationReport:
    """Verify *package* with the destination SCPU and re-witness records.

    Raises :class:`MigrationError` when the package-level manifest fails
    (nothing is imported); per-record failures are collected in the
    report while the verifiable remainder still migrates.
    """
    # 1. Establish trust in the source keys through the shared CA.
    trusted: Dict[str, Tuple[object, str]] = {}
    for cert in package.source_certificates:
        if not CertificateAuthority.verify_certificate(cert, ca.root_public_key):
            raise MigrationError(
                f"source certificate for role {cert.role!r} fails CA check")
        trusted[cert.fingerprint] = (cert.public_key, cert.role)

    # 2. Verify the manifest with the destination SCPU.
    manifest = package.manifest
    if manifest.envelope.purpose != Purpose.MIGRATION_MANIFEST:
        raise MigrationError("manifest has the wrong envelope purpose")
    signer = trusted.get(manifest.key_fingerprint)
    if signer is None or signer[1] != "s":
        raise MigrationError("manifest not signed by the source's s key")
    if not dest.scpu_rt.verify_envelope(manifest, signer[0]):
        raise MigrationError("manifest signature verification failed")
    if manifest.field("manifest_hash") != _package_hash(
            package.vrdt_snapshot, package.blocks):
        raise MigrationError("package contents do not match the signed manifest")

    # 3. Per-record verification + re-witnessing.
    report = MigrationReport()
    report.archived_deletion_proofs = len(
        package.vrdt_snapshot.get("deletion_proofs", []))
    for vrd_data in package.vrdt_snapshot["active"]:
        vrd = VirtualRecordDescriptor.from_dict(vrd_data)
        failure = _verify_source_record(dest, vrd, package.blocks, trusted)
        if failure is not None:
            report.rejected.append((vrd.sn, failure))
            continue
        payloads = [package.blocks[rd.key] for rd in vrd.rdl]
        receipt = dest.import_record(vrd.attr, payloads)
        report.sn_mapping[vrd.sn] = receipt.sn
        report.migrated += 1
    return report


def _verify_source_record(dest: StrongWormStore, vrd: VirtualRecordDescriptor,
                          blocks: Dict[str, bytes],
                          trusted: Dict[str, Tuple[object, str]]):
    """Return a failure reason, or None when the record fully verifies."""
    for signed, label in ((vrd.metasig, "metasig"), (vrd.datasig, "datasig")):
        if signed.scheme == "hmac":
            return f"{label} is HMAC-only; source must strengthen before migrating"
        signer = trusted.get(signed.key_fingerprint)
        if signer is None or signer[1] not in ("s", "burst"):
            return f"{label} signed by an untrusted key"
        if not dest.scpu_rt.verify_envelope(signed, signer[0]):
            return f"{label} signature verification failed"
    if vrd.metasig.field("sn") != vrd.sn or vrd.datasig.field("sn") != vrd.sn:
        return "signatures name a different SN"
    if vrd.metasig.field("attr") != vrd.attr.canonical_bytes():
        return "attributes do not match metasig"
    missing = [rd.key for rd in vrd.rdl if rd.key not in blocks]
    if missing:
        return f"payloads missing from package: {missing}"
    hasher = ChainedHasher()
    for rd in vrd.rdl:
        hasher.update(blocks[rd.key])
    dest.scpu.meter.charge(
        "sha", dest.scpu.profile.sha_seconds(
            sum(rd.length for rd in vrd.rdl), dest.scpu.hash_block_size))
    if hasher.digest() != vrd.datasig.field("data_hash"):
        return "record data does not match datasig"
    return None
