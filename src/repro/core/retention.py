"""Record expiration: the VEXP list and the Retention Monitor (§4.2.2).

The Retention Monitor (RM) is "a specialized daemon running inside the
SCPU".  To avoid linear VRDT scans at every deletion decision, the SCPU
keeps **VEXP** — a list of (expiration time, SN) pairs sorted by
expiration — in its scarce secure memory, "subject to secure storage
space".  The RM sleeps until the next expiration, wakes, deletes the due
record (shredding + deletion proof), re-arms, and goes back to sleep; a
write with an earlier expiration resets the alarm.

Secure-memory pressure: when VEXP is full, inserting an entry that expires
*earlier* than the current latest entry evicts that latest entry (the near
future must stay precise; the far future can be recovered later), and the
monitor marks itself as needing a **night scan** — the "updated during
light load periods (e.g., night-time)" pass that linearly scans the VRDT,
*verifying each metasig* (the VRDT is untrusted, so expiry times are only
believed when the SCPU's own signature over the attributes checks out)
and refilling VEXP.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Tuple

__all__ = ["Vexp", "RetentionMonitor"]

#: Approximate secure-memory footprint of one VEXP entry (time + SN).
VEXP_ENTRY_BYTES = 16


class Vexp:
    """The sorted expiration list, capacity-bounded by secure memory."""

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError("VEXP capacity must be at least 1")
        self.capacity = capacity
        self._entries: List[Tuple[float, int]] = []  # sorted by (time, sn)
        self._needs_rescan = False
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def needs_rescan(self) -> bool:
        """True when capacity pressure may have dropped far-future entries."""
        return self._needs_rescan

    def insert(self, expires_at: float, sn: int) -> bool:
        """Add an entry; returns False when it was dropped for capacity.

        A full VEXP still admits entries earlier than its latest one (by
        evicting that latest entry): timely deletion of the near future
        is the monitor's contract, the far future is recoverable by the
        night scan.
        """
        entry = (expires_at, sn)
        if len(self._entries) >= self.capacity:
            latest = self._entries[-1]
            if entry >= latest:
                self._needs_rescan = True
                return False
            self._entries.pop()
            self.evictions += 1
            self._needs_rescan = True
        bisect.insort(self._entries, entry)
        return True

    def remove(self, sn: int) -> None:
        """Drop any entries for *sn* (deleted through another path)."""
        self._entries = [(t, s) for t, s in self._entries if s != sn]

    def peek(self) -> Optional[Tuple[float, int]]:
        """The next (earliest) expiration, or None when empty."""
        return self._entries[0] if self._entries else None

    def pop_due(self, now: float) -> List[Tuple[float, int]]:
        """Remove and return every entry with ``expires_at <= now``."""
        split = bisect.bisect_right(self._entries, (now, float("inf")))
        due, self._entries = self._entries[:split], self._entries[split:]
        return due

    def rebuild(self, entries: List[Tuple[float, int]]) -> None:
        """Replace contents from a night scan (earliest entries win)."""
        entries = sorted(entries)
        self._entries = entries[: self.capacity]
        self._needs_rescan = len(entries) > self.capacity
        if self._needs_rescan:
            self.evictions += len(entries) - self.capacity

    def secure_memory_bytes(self) -> int:
        """Current secure-memory footprint of the list."""
        return len(self._entries) * VEXP_ENTRY_BYTES


class RetentionMonitor:
    """The RM daemon: drives timely deletion from VEXP.

    ``store`` is the owning :class:`~repro.core.worm.StrongWormStore`; the
    monitor conceptually runs inside the store's SCPU and calls back into
    the (SCPU-mediated) expiry path.  The monitor is written in a "tick"
    style — :meth:`tick` processes everything due at the given time — so
    it works identically under the discrete-event simulator (which calls
    it from an alarm process) and in direct/functional use.
    """

    def __init__(self, store, vexp_capacity: int = 65536) -> None:
        self._store = store
        self.vexp = Vexp(capacity=vexp_capacity)
        self.deletions = 0
        self.holds_encountered = 0
        self.night_scans = 0

    # -- write-path hook -------------------------------------------------------

    def on_write(self, sn: int, expires_at: float) -> None:
        """Register a freshly written record's expiration (SCPU write path)."""
        self.vexp.insert(expires_at, sn)

    def next_expiry(self) -> Optional[float]:
        """When the RM should next wake, or None if nothing is scheduled."""
        head = self.vexp.peek()
        return head[0] if head else None

    # -- the daemon body ----------------------------------------------------------

    def tick(self, now: float) -> List[int]:
        """Process all expirations due at *now*; returns deleted SNs.

        Records under a litigation hold are *not* deleted; they re-enter
        VEXP at their hold timeout (a court release before then goes
        through lit_release, which also reschedules).
        """
        deleted: List[int] = []
        for _, sn in self.vexp.pop_due(now):
            outcome = self._store.expire_record(sn, now)
            if outcome == "deleted":
                self.deletions += 1
                deleted.append(sn)
            elif outcome == "held":
                self.holds_encountered += 1
                vrd = self._store.vrdt.get_active(sn)
                if vrd is not None and vrd.attr.litigation_timeout > now:
                    self.vexp.insert(vrd.attr.litigation_timeout, sn)
            # "already" (gone via another path) needs no action.
        return deleted

    def night_scan(self, now: float) -> int:
        """Rebuild VEXP from the VRDT during a light-load period.

        Scans every active entry, has the SCPU verify its metasig (an
        unverified VRDT attr could carry a forged far-future expiry that
        starves deletion, or a past one that rushes it), and rebuilds the
        list.  Returns the number of entries verified.
        """
        entries: List[Tuple[float, int]] = []
        verified = 0
        for sn in self._store.vrdt.active_sns:
            vrd = self._store.vrdt.get_active(sn)
            if vrd is None:  # pragma: no cover - race with expiry
                continue
            if not self._store.scpu_verify_metasig(vrd):
                # Tampered attr: skip — reads of this SN will fail client
                # verification; the monitor must not act on forged times.
                continue
            verified += 1
            when = vrd.attr.expires_at
            if vrd.attr.litigation_hold:
                when = max(when, vrd.attr.litigation_timeout)
            entries.append((when, sn))
        self.vexp.rebuild(entries)
        self.night_scans += 1
        return verified

    # -- discrete-event form ---------------------------------------------------------

    def process(self, sim):
        """RM as a simulation process: sleep → wake at expiry → delete.

        Yields simulation timeouts; the store interrupts this process
        when a new record expires earlier than the current alarm (§4.2.2:
        "the SCPU resets the alarm timer to this new expiration time").
        """
        from repro.sim.engine import Interrupt

        while True:
            head = self.next_expiry()
            if head is None:
                try:
                    yield sim.timeout(3600.0)  # idle heartbeat
                except Interrupt:
                    pass
                continue
            delay = max(0.0, head - sim.now)
            try:
                yield sim.timeout(delay)
            except Interrupt:
                continue  # alarm re-armed for an earlier expiry
            self.tick(sim.now)
