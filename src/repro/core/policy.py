"""Regulation policies: retention rules per compliance regime (§1).

The paper motivates WORM storage with the regulatory landscape — SEC 17a-4
for broker-dealers, HIPAA for health records, Sarbanes-Oxley, FERPA, DOD
5015.2, FDA 21 CFR Part 11, Gramm-Leach-Bliley.  A :class:`RegulationPolicy`
captures what the WORM layer needs from each: the mandated retention
period, whether secure deletion at end-of-life is required or merely
allowed, the shredding algorithm to use, and whether litigation holds
apply.  :data:`STANDARD_POLICIES` provides ready-made profiles for the
regulations the paper cites, with their commonly mandated retention
periods.

Retention periods here are defaults; a write may lengthen (never shorten)
the period for an individual record — regulation sets a floor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Optional

from repro.core.errors import RetentionViolationError, UnknownPolicyError

__all__ = ["RegulationPolicy", "PolicyRegistry", "STANDARD_POLICIES", "YEAR_SECONDS"]

#: One (non-leap) year in seconds — the unit regulations speak in.
YEAR_SECONDS = 365.0 * 24 * 3600


@dataclass(frozen=True)
class RegulationPolicy:
    """One compliance regime's record-level requirements."""

    name: str
    citation: str
    retention_seconds: float
    secure_deletion_required: bool = False
    shredding_algorithm: str = "zero-fill"
    litigation_holds: bool = True
    description: str = ""

    def __post_init__(self) -> None:
        if self.retention_seconds < 0:
            raise ValueError("retention period cannot be negative")

    def effective_retention(self, requested_seconds: Optional[float]) -> float:
        """Resolve a caller-requested retention against the policy floor.

        ``None`` means "use the policy default"; an explicit request below
        the mandated period is a compliance violation and is refused.
        """
        if requested_seconds is None:
            return self.retention_seconds
        if requested_seconds < self.retention_seconds:
            raise RetentionViolationError(
                f"policy {self.name} mandates at least "
                f"{self.retention_seconds / YEAR_SECONDS:.1f}y retention; "
                f"got {requested_seconds / YEAR_SECONDS:.1f}y"
            )
        return requested_seconds


#: Profiles for the regulations cited in the paper's introduction.  The
#: retention periods are the commonly mandated figures for each regime.
STANDARD_POLICIES: Mapping[str, RegulationPolicy] = {
    policy.name: policy
    for policy in (
        RegulationPolicy(
            name="sec17a-4",
            citation="SEC Rule 17a-4, 17 CFR 240",
            retention_seconds=6 * YEAR_SECONDS,
            secure_deletion_required=False,
            description="Broker-dealer records: 6 years, first 2 easily accessible.",
        ),
        RegulationPolicy(
            name="hipaa",
            citation="HIPAA, 45 CFR 164.530(j)",
            retention_seconds=6 * YEAR_SECONDS,
            secure_deletion_required=True,
            shredding_algorithm="dod-5220-3pass",
            description="Health-care documentation: 6 years; PHI must be destroyed.",
        ),
        RegulationPolicy(
            name="sox",
            citation="Sarbanes-Oxley Act §802",
            retention_seconds=7 * YEAR_SECONDS,
            description="Audit work papers: 7 years.",
        ),
        RegulationPolicy(
            name="ferpa",
            citation="FERPA, 20 U.S.C. 1232g",
            retention_seconds=20 * YEAR_SECONDS,
            description="Educational records: retention horizons over 20 years.",
        ),
        RegulationPolicy(
            name="dod5015",
            citation="DOD Directive 5015.2",
            retention_seconds=25 * YEAR_SECONDS,
            secure_deletion_required=True,
            shredding_algorithm="random-7pass",
            description="DOD records management; intelligence-grade retention.",
        ),
        RegulationPolicy(
            name="fda-cfr11",
            citation="FDA 21 CFR Part 11",
            retention_seconds=10 * YEAR_SECONDS,
            description="Electronic records/signatures for life sciences.",
        ),
        RegulationPolicy(
            name="glba",
            citation="Gramm-Leach-Bliley Act",
            retention_seconds=5 * YEAR_SECONDS,
            secure_deletion_required=True,
            description="Financial-institution customer records.",
        ),
        RegulationPolicy(
            name="default",
            citation="(none)",
            retention_seconds=0.0,
            description="Unregulated data: caller chooses any retention.",
        ),
    )
}


class PolicyRegistry:
    """Mutable registry of regulation policies known to one store."""

    def __init__(self, policies: Optional[Mapping[str, RegulationPolicy]] = None) -> None:
        self._policies: Dict[str, RegulationPolicy] = dict(
            policies if policies is not None else STANDARD_POLICIES)

    def get(self, name: str) -> RegulationPolicy:
        """Look up a policy by name.

        Raises :class:`UnknownPolicyError` (a ``WormError`` that is also
        a ``KeyError``) for unknown names.
        """
        try:
            return self._policies[name]
        except KeyError:
            raise UnknownPolicyError(
                f"unknown regulation policy: {name!r}") from None

    def register(self, policy: RegulationPolicy) -> None:
        """Add or replace a policy (site-specific regimes)."""
        self._policies[policy.name] = policy

    def __contains__(self, name: str) -> bool:
        return name in self._policies

    def __iter__(self) -> Iterator[RegulationPolicy]:
        return iter(self._policies.values())

    def names(self) -> tuple:
        return tuple(sorted(self._policies))
