"""The Strong WORM store — the paper's record-level WORM layer (§4).

:class:`StrongWormStore` composes every piece of the architecture:

* the **SCPU** (trusted witness, §4.1) — involved in *updates only*;
* the **host CPU** and **disk** cost models (untrusted, fast);
* the **block store** and **VRDT** (untrusted state);
* the **authentication scheme** (pluggable via ``config.auth_scheme``:
  the paper's O(1) windows, a Merkle tree, or an RSA accumulator — see
  :mod:`repro.core.auth`);
* the **retention monitor** with its VEXP list (§4.2.2);
* the **deferred-strengthening queues** (§4.3).

The store itself is *main-CPU code*: it is not trusted, and nothing about
its in-process bookkeeping provides security.  All assurances flow from
the SCPU-signed constructs it stores and serves; the
:class:`~repro.core.client.WormClient` checks them.  The adversary tests
bypass this class entirely and mutate the underlying state, exactly like
an insider with physical access.

Every operation meters its virtual cost onto the SCPU / host / disk cost
models; :class:`WriteReceipt.costs` carries the per-device breakdown so
the simulation benchmarks can replay contention in virtual time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.auth import AuthenticationScheme, create_scheme
from repro.core.client import WormClient
from repro.core.config import StoreConfig
from repro.core.deferred import HashVerificationQueue, StrengtheningQueue
from repro.core.errors import (
    CredentialError,
    LitigationHoldError,
    ShardRoutingError,
    UnknownSerialNumberError,
    WormError,
)
from repro.core.locator import RecordLocator, resolve_locator
from repro.core.policy import PolicyRegistry
from repro.core.proofs import ReadResult
from repro.core.retention import RetentionMonitor
from repro.core.retry import RetryExecutor, RetryingScpu, RetryPolicy, RetryStats
from repro.core.shredding import shred
from repro.crypto.envelope import Purpose, SignedEnvelope
from repro.crypto.keys import Certificate, CertificateAuthority, security_lifetime
from repro.hardware.device import ScpuLike
from repro.hardware.disk import DiskDevice
from repro.obs.bus import NULL_BUS
from repro.hardware.host import HostCPU
from repro.hardware.scpu import SecureCoprocessor, Strength
from repro.storage.block_store import BlockStore, MemoryBlockStore
from repro.storage.record import RecordAttributes, RecordDescriptor
from repro.storage.vrd import VirtualRecordDescriptor
from repro.storage.vrdt import VrdTable

__all__ = ["StrongWormStore", "WriteReceipt", "Strength"]

#: Strengthening target for HMAC-witnessed records (seconds).  HMACs do
#: not weaken cryptographically, but they are client-unverifiable, so the
#: system aims to upgrade them within the same horizon as weak signatures.
HMAC_STRENGTHEN_TARGET = 3600.0


@dataclass(frozen=True)
class WriteReceipt:
    """What a write returns: the new VRD and its virtual-cost breakdown."""

    sn: int
    vrd: VirtualRecordDescriptor
    strength: str
    costs: Dict[str, float] = field(default_factory=dict)

    @property
    def total_cost(self) -> float:
        return sum(self.costs.values())


class StrongWormStore:
    """One WORM store: an SCPU-augmented storage server (§2.2 deployment)."""

    def __init__(self,
                 scpu: Optional[ScpuLike] = None,
                 block_store: Optional[BlockStore] = None,
                 host: Optional[HostCPU] = None,
                 disk: Optional[DiskDevice] = None,
                 policies: Optional[PolicyRegistry] = None,
                 regulator_public_key=None,
                 window_refresh_interval: Optional[float] = None,
                 vexp_capacity: Optional[int] = None,
                 strengthen_safety_factor: Optional[float] = None,
                 config: Optional[StoreConfig] = None) -> None:
        """Build a store from a :class:`StoreConfig` and/or legacy kwargs.

        Prefer ``StrongWormStore(config=StoreConfig(...))``.  The
        individual keyword arguments predate :class:`StoreConfig` and are
        kept for back-compat (deprecated for new code); when both are
        given, an explicitly passed keyword overrides the config field.
        """
        config = config if config is not None else StoreConfig()
        config = config.with_overrides(
            scpu=scpu, block_store=block_store, host=host, disk=disk,
            policies=policies, regulator_public_key=regulator_public_key,
            window_refresh_interval=window_refresh_interval,
            vexp_capacity=vexp_capacity,
            strengthen_safety_factor=strengthen_safety_factor)
        self.config = config
        self.scpu = config.scpu if config.scpu is not None else SecureCoprocessor()
        self.blocks = (config.block_store if config.block_store is not None
                       else MemoryBlockStore())
        self.host = config.host if config.host is not None else HostCPU()
        self.disk = config.disk if config.disk is not None else DiskDevice()
        self.policies = (config.policies if config.policies is not None
                         else PolicyRegistry())
        self.regulator_public_key = config.regulator_public_key
        self.obs = (config.observe if config.observe is not None
                    else NULL_BUS)

        # Transient SCPU faults (a dropped bus request, a firmware
        # hiccup) are retried with capped backoff; tamper trips are
        # permanent and escalate immediately.  ``self.scpu`` stays the
        # raw device the caller handed us; every internal trust-boundary
        # call goes through the retrying view instead.
        self.retry = RetryExecutor(
            config.retry_policy if config.retry_policy is not None
            else RetryPolicy(),
            clock=self.scpu.clock, obs=self.obs)
        self._scpu_rt = RetryingScpu(self.scpu, self.retry)

        self.vrdt = VrdTable()
        # The authentication scheme is selected purely by config; unknown
        # names raise UnknownAlgorithmError here, at construction.
        self.auth: AuthenticationScheme = create_scheme(config.auth_scheme,
                                                        self)
        # Back-compat alias: under the default scheme, ``store.windows``
        # remains the live WindowManager (pre-scheme tooling pokes it
        # directly); other schemes have no window manager.
        self.windows = getattr(self.auth, "windows", None)
        self.retention = RetentionMonitor(self, vexp_capacity=config.vexp_capacity)
        self.strengthening = StrengtheningQueue(
            self, safety_factor=config.strengthen_safety_factor, obs=self.obs)
        self.hash_verification = HashVerificationQueue(self, obs=self.obs)
        if self.obs.enabled:
            self._wire_telemetry()

        self._burst_certificates: List[Certificate] = []
        self._rm_process = None  # simulation-mode retention process

        # Publish the scheme's initial signed state so even an empty
        # store can prove "never allocated" to clients.
        self.auth.bootstrap()

    # ------------------------------------------------------------- telemetry

    def _wire_telemetry(self) -> None:
        """Connect this store's components to the shared telemetry bus.

        Device meters mirror every charge (seeded with anything charged
        before attachment, so bus seconds always equal meter totals);
        backlog depths are pull-gauges read at snapshot time; the store's
        own counters and latency histograms are declared up front because
        their names are part of the exported-snapshot API.
        """
        self.scpu.meter.attach_telemetry(self.obs, "scpu")
        self.host.meter.attach_telemetry(self.obs, "host")
        self.disk.meter.attach_telemetry(self.obs, "disk")
        self.obs.register_gauge("strengthen.backlog",
                                self.strengthening.active_backlog)
        self.obs.register_gauge(
            "strengthen.overdue",
            lambda: float(self.strengthening.overdue_count(self.now)))
        self.obs.register_gauge(
            "hashverify.backlog",
            lambda: float(len(self.hash_verification)))
        for name in ("store.writes", "store.writes.strong",
                     "store.writes.weak", "store.writes.hmac",
                     "store.reads", "store.expired", "store.shreds",
                     "maintenance.runs"):
            self.obs.declare_counter(name)
        self.obs.declare_histogram("op.write.seconds")
        self.obs.declare_histogram("op.read.seconds")

    def _emit_op_spans(self, label: str, costs: Dict[str, float]) -> None:
        """One span per device that did work for this operation.

        Spans start at the operation's (virtual) completion time and run
        for the device's share — a per-device attribution lane in the
        Chrome trace, not a queueing-accurate schedule (the simulator's
        own TraceRecorder provides that).
        """
        now = self.now
        for device, cost in costs.items():
            if cost > 0.0:
                self.obs.span(label, device, now, now + cost, device=device)

    def telemetry_snapshot(self) -> Dict[str, object]:
        """The store's bus snapshot (empty structure when unobserved)."""
        return self.obs.snapshot()

    # ------------------------------------------------------------------ utils

    @property
    def now(self) -> float:
        """Store time (the SCPU clock; hosts are roughly synchronized)."""
        return self.scpu.now

    @property
    def auth_scheme(self) -> str:
        """Name of the configured authentication scheme ("windows", ...)."""
        return self.auth.name

    @property
    def scpu_rt(self) -> RetryingScpu:
        """The retry-gated SCPU view — how store-layer code calls the card.

        ``self.scpu`` stays the raw device for identity/ownership checks;
        every *service* call from the WORM layer goes through this view so
        transient bus faults retry with backoff and tamper trips escalate
        exactly once (wormlint W003 enforces this in ``repro.core``).
        """
        return self._scpu_rt

    def _resolve_sn(self, sn) -> int:
        """Normalize an SN argument: int, packed locator, or locator.

        A standalone store is shard 0 of a one-shard deployment, so the
        packed locators its callers wrote down (``"0:41:0"``) route here
        uniformly with the sharded front-end.  A locator naming any
        other shard is a routing error, not a silent misread.
        """
        if isinstance(sn, bool) or not isinstance(sn, (int, str,
                                                       RecordLocator)):
            raise ShardRoutingError(
                f"cannot address a record by {sn!r}; pass a serial "
                "number, a RecordLocator, or a packed locator string")
        if isinstance(sn, int):
            return sn
        resolved = resolve_locator(sn)
        if resolved.shard_id != 0:
            raise ShardRoutingError(
                f"locator {resolved.pack()} names shard "
                f"{resolved.shard_id}; a standalone store serves shard 0")
        return resolved.sn

    def _cost_checkpoints(self) -> Tuple[float, float, float]:
        return (self.scpu.meter.checkpoint(), self.host.meter.checkpoint(),
                self.disk.meter.checkpoint())

    def _cost_delta(self, marks: Tuple[float, float, float]) -> Dict[str, float]:
        return {
            "scpu": self.scpu.meter.delta(marks[0]),
            "host": self.host.meter.delta(marks[1]),
            "disk": self.disk.meter.delta(marks[2]),
        }

    # ------------------------------------------------------------------- write

    def write(self, records: Sequence[bytes],
              policy: str = "default",
              retention_seconds: Optional[float] = None,
              strength: str = Strength.STRONG,
              defer_data_hash: bool = False,
              shared_rds: Sequence[RecordDescriptor] = (),
              mac_label: str = "", dac_owner: str = "",
              f_flag: int = 0) -> WriteReceipt:
        """Commit a virtual record to WORM storage (§4.2.2 Write).

        *records* are this VR's physical records in order: each element
        is either a new payload (``bytes``) or a
        :class:`~repro.storage.record.RecordDescriptor` referencing an
        already-stored record to share (the popular-attachment sharing of
        §4.2 — overlapping VRs, stored once).  *shared_rds* is a
        convenience that prepends shared descriptors before *records*.
        ``strength`` selects the witnessing mode of §4.3;
        ``defer_data_hash`` additionally lets the (untrusted) host
        compute the data hash during the burst, to be verified by the
        SCPU at idle time.

        Returns a :class:`WriteReceipt` with the per-device virtual-cost
        breakdown of exactly this operation.
        """
        if isinstance(records, (bytes, bytearray)):
            raise TypeError("pass a sequence of record payloads, e.g. [data]")
        if not records and not shared_rds:
            raise WormError("a virtual record needs at least one data record")
        marks = self._cost_checkpoints()
        regulation = self.policies.get(policy)
        retention = regulation.effective_retention(retention_seconds)

        # 1. Main CPU writes the new payloads to untrusted storage;
        #    shared descriptors are validated and referenced in place.
        rdl: List[RecordDescriptor] = []
        for item in (*shared_rds, *records):
            if isinstance(item, RecordDescriptor):
                if item.key not in self.blocks:
                    raise WormError(
                        f"shared record {item.key!r} is not in the store")
                rdl.append(item)
                continue
            key = self.retry.call("block_store.put", self.blocks.put,
                                  item)
            self.disk.write(len(item), sequential=True)
            self.host.memcpy_cost(len(item))
            rdl.append(RecordDescriptor(key=key, length=len(item)))

        # 2. Hash the VR data — on the SCPU (DMA + card SHA) or, in the
        #    weaker burst mode, on the host with deferred verification.
        chunks = [self.retry.call("block_store.get", self.blocks.get,
                                  rd.key) for rd in rdl]
        if defer_data_hash:
            data_hash = self.host.hash_record_data(chunks)
        else:
            data_hash = self._scpu_rt.hash_record_data(chunks)

        # 3. SCPU allocates the SN and witnesses the update.
        sn = self._scpu_rt.issue_serial_number()
        attr = RecordAttributes(
            created_at=self.now,
            retention_seconds=retention,
            policy=regulation.name,
            shredding_algorithm=regulation.shredding_algorithm,
            mac_label=mac_label,
            dac_owner=dac_owner,
            f_flag=f_flag,
        )
        metasig, datasig = self._scpu_rt.witness_write(
            sn, attr.canonical_bytes(), data_hash, strength=strength)

        # 4. Main CPU materializes the VRD into the VRDT.
        vrd = VirtualRecordDescriptor(sn=sn, attr=attr, rdl=tuple(rdl),
                                      metasig=metasig, datasig=datasig,
                                      data_hash=data_hash)
        self.vrdt.insert_active(vrd)
        self.host.table_touch()
        self.disk.write(256, sequential=True)  # VRDT log append

        # 5. Bookkeeping: retention alarm, deferred queues, freshness.
        previous_head = self.retention.next_expiry()
        self.retention.on_write(sn, attr.expires_at)
        if self._rm_process is not None and (
                previous_head is None or attr.expires_at < previous_head):
            self._rm_process.interrupt("earlier-expiry")
        if strength == Strength.WEAK:
            self.strengthening.enqueue(
                sn, self.now, security_lifetime(metasig.key_bits))
        elif strength == Strength.HMAC:
            self.strengthening.enqueue(sn, self.now, HMAC_STRENGTHEN_TARGET)
        if defer_data_hash:
            self.hash_verification.enqueue(sn, self.now)
        self.auth.on_write(vrd)

        costs = self._cost_delta(marks)
        if self.obs.enabled:
            self.obs.inc("store.writes")
            self.obs.inc(f"store.writes.{strength}")
            self.obs.observe("op.write.seconds", sum(costs.values()))
            self._emit_op_spans("write", costs)
        return WriteReceipt(sn=sn, vrd=vrd, strength=strength, costs=costs)

    # -------------------------------------------------------------------- read

    def read(self, sn) -> ReadResult:
        """Serve a read with its proof (§4.2.2 Read) — main CPU only.

        *sn* is a serial number, a :class:`RecordLocator`, or a packed
        locator string (``"0:41:0"`` — shard 0, uniformly with the
        sharded front-end).  The SCPU is never touched: proofs are the
        *stored* signed artifacts.  If those have gone stale (an idle
        store without its maintenance loop), clients will reject them —
        by design.
        """
        sn = self._resolve_sn(sn)
        if not self.obs.enabled:
            return self._serve_read(sn)
        marks = self._cost_checkpoints()
        result = self._serve_read(sn)
        costs = self._cost_delta(marks)
        self.obs.inc("store.reads")
        self.obs.observe("op.read.seconds", sum(costs.values()))
        self._emit_op_spans("read", costs)
        return result

    def _serve_read(self, sn: int) -> ReadResult:
        """The read path proper (see :meth:`read` for the contract)."""
        if sn < 1:
            raise UnknownSerialNumberError(f"serial numbers start at 1, got {sn}")
        self.host.table_touch()
        case = self.auth.classify(sn)
        if case == "missing":
            raise UnknownSerialNumberError(
                f"SN {sn} is inside the window but has no entry — VRDT corrupted")
        status, proof = self.auth.prove(sn, case)

        if status == "active":
            vrd = self.vrdt.get_active(sn)
            assert vrd is not None
            payloads = []
            for rd in vrd.rdl:
                payloads.append(self.retry.call(
                    "block_store.get", self.blocks.get, rd.key))
                self.disk.read(rd.length)
            return ReadResult(sn=sn, status="active", proof=proof, vrd=vrd,
                              records=tuple(payloads))

        if case == "deletion-proof":
            self.disk.read(256)
        return ReadResult(sn=sn, status=status, proof=proof)

    def _stored_sn_current(self) -> SignedEnvelope:
        envelope = self.vrdt.sn_current_envelope
        if envelope is None:  # pragma: no cover - initialized in __init__
            raise WormError("no signed SN_current available")
        return envelope

    def _stored_sn_base(self) -> SignedEnvelope:
        envelope = self.vrdt.sn_base_envelope
        if envelope is None:  # pragma: no cover - initialized in __init__
            raise WormError("no signed SN_base available")
        return envelope

    # -------------------------------------------------------- expiry & deletion

    def expire_record(self, sn, now: float) -> str:
        """Delete a retention-expired record (called by the RM, §4.2.2).

        *sn* accepts the same serial-number / locator forms as
        :meth:`read`.  Returns ``"deleted"``, ``"held"`` (litigation
        hold), ``"premature"`` (not yet expired — the RM re-arms), or
        ``"already"`` (no longer active).
        """
        sn = self._resolve_sn(sn)
        vrd = self.vrdt.get_active(sn)
        if vrd is None:
            return "already"
        if now < vrd.attr.expires_at:
            return "premature"
        if vrd.attr.litigation_hold and now < vrd.attr.litigation_timeout:
            return "held"

        # Shred payloads that no other active VR still references (this
        # VR itself holds one reference until mark_expired below).
        shredded = 0
        for rd in vrd.rdl:
            if self.vrdt.block_references(rd.key) > 1:
                continue
            if rd.key not in self.blocks:
                continue
            result = shred(self.blocks, rd.key, rd.length,
                           vrd.attr.shredding_algorithm)
            for _ in range(result.passes):
                self.disk.write(rd.length)
            shredded += 1

        proof = self.auth.witness_deletion(sn)
        self.vrdt.mark_expired(sn, proof)
        self.strengthening.note_deleted(sn)
        self.host.table_touch()
        self.disk.write(256, sequential=True)
        if self.obs.enabled:
            self.obs.inc("store.expired")
            if shredded:
                self.obs.inc("store.shreds", shredded)
            self.obs.event("record.expired", now, sn=sn, shredded=shredded)
        return "deleted"

    # ------------------------------------------------------------- litigation

    def _require_credential(self, sn: int, credential: SignedEnvelope) -> None:
        if self.regulator_public_key is None:
            raise CredentialError("store has no provisioned regulation authority")
        ok = self._scpu_rt.verify_regulator_credential(
            credential, self.regulator_public_key, sn)
        if not ok:
            raise CredentialError("litigation credential failed SCPU verification")

    def lit_hold(self, sn: int, credential: SignedEnvelope,
                 hold_timeout: float) -> VirtualRecordDescriptor:
        """Place a litigation hold on an active record (§4.2.2 Litigation).

        *credential* is the authority's ``S_reg(SN, current_time)``; the
        SCPU verifies it before altering attr and re-issuing metasig.
        The hold blocks deletion until *hold_timeout* even if retention
        expires first.
        """
        vrd = self.vrdt.get_active(sn)
        if vrd is None:
            raise UnknownSerialNumberError(f"SN {sn} is not active")
        self._require_credential(sn, credential)
        import hashlib
        cred_hash = hashlib.sha256(
            credential.envelope.canonical_bytes() + credential.signature).digest()
        new_attr = vrd.attr.with_hold(hold_timeout, cred_hash)
        metasig = self._scpu_rt.resign_metadata(sn, new_attr.canonical_bytes())
        updated = vrd.with_attr(new_attr, metasig)
        self.vrdt.replace_active(updated)
        self.auth.on_attr_change(updated)
        self.host.table_touch()
        self.disk.write(256, sequential=True)
        self.retention.vexp.remove(sn)
        self.retention.on_write(sn, max(new_attr.expires_at, hold_timeout))
        return updated

    def lit_release(self, sn: int, credential: SignedEnvelope
                    ) -> VirtualRecordDescriptor:
        """Release a litigation hold (only with a fresh authority credential)."""
        vrd = self.vrdt.get_active(sn)
        if vrd is None:
            raise UnknownSerialNumberError(f"SN {sn} is not active")
        if not vrd.attr.litigation_hold:
            raise LitigationHoldError(f"SN {sn} is not under a litigation hold")
        self._require_credential(sn, credential)
        new_attr = vrd.attr.with_release()
        metasig = self._scpu_rt.resign_metadata(sn, new_attr.canonical_bytes())
        updated = vrd.with_attr(new_attr, metasig)
        self.vrdt.replace_active(updated)
        self.auth.on_attr_change(updated)
        self.host.table_touch()
        self.disk.write(256, sequential=True)
        self.retention.vexp.remove(sn)
        self.retention.on_write(sn, new_attr.expires_at)
        return updated

    # ---------------------------------------------- deferred-queue callbacks

    def strengthen_vrd(self, sn: int) -> None:
        """Upgrade one weak/HMAC-witnessed VRD to strong signatures.

        Both signatures travel to the card together — one boundary
        crossing per record instead of one per signature.
        """
        vrd = self.vrdt.get_active(sn)
        if vrd is None:
            return
        metasig, datasig = self._scpu_rt.strengthen_batch(
            [vrd.metasig, vrd.datasig])
        self.vrdt.replace_active(vrd.with_signatures(metasig, datasig))
        self.host.table_touch()
        self.disk.write(256, sequential=True)

    def scpu_verify_metasig(self, vrd: VirtualRecordDescriptor) -> bool:
        """SCPU-side check of a VRDT entry's metasig (night scan)."""
        signed = vrd.metasig
        if signed.envelope.purpose != Purpose.METASIG:
            return False
        if signed.envelope.fields.get("sn") != vrd.sn:
            return False
        if signed.envelope.fields.get("attr") != vrd.attr.canonical_bytes():
            return False
        if signed.scheme == "hmac":
            return self._scpu_rt.verify_own_hmac(signed)
        publics = self._scpu_rt.public_keys()
        by_fingerprint = {key.fingerprint(): key
                          for key in (publics["s"], publics["burst"])}
        key = by_fingerprint.get(signed.key_fingerprint)
        if key is None:
            return False
        return self._scpu_rt.verify_envelope(signed, key)

    def scpu_verify_data_hash(self, vrd: VirtualRecordDescriptor) -> bool:
        """SCPU re-reads the VR's data and verifies a host-claimed hash."""
        chunks = []
        for rd in vrd.rdl:
            chunks.append(self.retry.call("block_store.get",
                                          self.blocks.get, rd.key))
            self.disk.read(rd.length)
        return self._scpu_rt.verify_deferred_hash(chunks, vrd.data_hash)

    # ----------------------------------------------------------- maintenance

    def maintenance(self, strengthen_budget: Optional[int] = None,
                    verify_budget: Optional[int] = None,
                    compact: bool = True) -> Dict[str, int]:
        """One idle-period maintenance slice (§4.2.1/§4.3 "idle periods").

        Runs due expirations, drains the strengthening and
        hash-verification queues, then hands the authentication scheme
        its idle slice (freshness refresh; for the window scheme also
        compaction and base advancement).  Returns a summary of work done.
        """
        summary = {"expired": 0, "strengthened": 0, "hashes_verified": 0,
                   "windows_compacted": 0, "base_advanced": 0,
                   "night_scanned": 0}
        summary["expired"] = len(self.retention.tick(self.now))
        summary["strengthened"] = self.strengthening.drain(
            self.now, max_items=strengthen_budget)
        summary["hashes_verified"] = self.hash_verification.drain(
            max_items=verify_budget)
        summary.update(self.auth.maintenance(compact=compact))
        if self.retention.vexp.needs_rescan:
            summary["night_scanned"] = self.retention.night_scan(self.now)
        if self.obs.enabled:
            self.obs.inc("maintenance.runs")
            self.obs.event("maintenance", self.now, **summary)
        return summary

    # ------------------------------------------------------------- migration

    def import_record(self, attr: RecordAttributes,
                      payloads: Sequence[bytes]) -> WriteReceipt:
        """Re-witness a verified migrated record under this store's SCPU.

        Used only by :mod:`repro.core.migration`, *after* the destination
        SCPU has verified the source store's signatures over exactly this
        attr/data pair.  Unlike :meth:`write`, the original attributes —
        including ``created_at`` and any litigation hold — are preserved,
        so the retention clock keeps running across media generations
        (§1 Compliant Migration).
        """
        marks = self._cost_checkpoints()
        rdl: List[RecordDescriptor] = []
        for payload in payloads:
            key = self.retry.call("block_store.put", self.blocks.put,
                                  payload)
            self.disk.write(len(payload), sequential=True)
            self.host.memcpy_cost(len(payload))
            rdl.append(RecordDescriptor(key=key, length=len(payload)))
        data_hash = self._scpu_rt.hash_record_data(payloads)
        sn = self._scpu_rt.issue_serial_number()
        metasig, datasig = self._scpu_rt.witness_write(
            sn, attr.canonical_bytes(), data_hash, strength=Strength.STRONG)
        vrd = VirtualRecordDescriptor(sn=sn, attr=attr, rdl=tuple(rdl),
                                      metasig=metasig, datasig=datasig,
                                      data_hash=data_hash)
        self.vrdt.insert_active(vrd)
        self.host.table_touch()
        self.disk.write(256, sequential=True)
        self.retention.on_write(
            sn, max(attr.expires_at,
                    attr.litigation_timeout if attr.litigation_hold else 0.0))
        self.auth.on_write(vrd)
        return WriteReceipt(sn=sn, vrd=vrd, strength=Strength.STRONG,
                            costs=self._cost_delta(marks))

    def import_records(self, items: Sequence[Tuple[RecordAttributes,
                                                   Sequence[bytes]]]
                       ) -> List[WriteReceipt]:
        """Batched :meth:`import_record` for bulk replay (recovery, drills).

        Hashing, SN issue, and witnessing each cross the SCPU boundary
        once for the whole batch rather than once per record; per-record
        crypto costs are unchanged and the batch's device costs are split
        evenly across the returned receipts.
        """
        if not items:
            return []
        marks = self._cost_checkpoints()
        rdls: List[Tuple[RecordDescriptor, ...]] = []
        total_bytes = 0
        for _, payloads in items:
            rdl: List[RecordDescriptor] = []
            for payload in payloads:
                key = self.retry.call("block_store.put", self.blocks.put,
                                      payload)
                total_bytes += len(payload)
                self.host.memcpy_cost(len(payload))
                rdl.append(RecordDescriptor(key=key, length=len(payload)))
            rdls.append(tuple(rdl))
        # Bulk replay lands as one sequential stream, not per-payload seeks.
        self.disk.write(total_bytes, sequential=True)
        hashes = self._scpu_rt.hash_record_data_batch(
            [payloads for _, payloads in items])
        sns = self._scpu_rt.issue_serial_numbers(len(items))
        sig_pairs = self._scpu_rt.witness_write_batch(
            [(sn, attr.canonical_bytes(), data_hash)
             for sn, (attr, _), data_hash in zip(sns, items, hashes)],
            strength=Strength.STRONG)
        vrds: List[VirtualRecordDescriptor] = []
        self.disk.write(256 * len(items), sequential=True)
        for sn, (attr, _), rdl, data_hash, (metasig, datasig) in zip(  # wormlint: disable=W009 - host-side table bookkeeping; the batch's SCPU crossings (hash/SN/witness) are amortised above, and the auth hook is per-record by protocol
                sns, items, rdls, hashes, sig_pairs):
            vrd = VirtualRecordDescriptor(sn=sn, attr=attr, rdl=rdl,
                                          metasig=metasig, datasig=datasig,
                                          data_hash=data_hash)
            self.vrdt.insert_active(vrd)
            self.host.table_touch()
            self.retention.on_write(
                sn, max(attr.expires_at,
                        attr.litigation_timeout if attr.litigation_hold
                        else 0.0))
            self.auth.on_write(vrd)
            vrds.append(vrd)
        share = {device: cost / len(items)
                 for device, cost in self._cost_delta(marks).items()}
        return [WriteReceipt(sn=vrd.sn, vrd=vrd, strength=Strength.STRONG,
                             costs=dict(share)) for vrd in vrds]

    # ---------------------------------------------------------- client setup

    def certificates(self, ca: CertificateAuthority) -> List[Certificate]:
        """All certificates a client needs (s, d, current + past burst keys)."""
        certs = self._scpu_rt.certify_with(ca)
        return [certs["s"], certs["d"], certs["burst"], *self._burst_certificates]

    def rotate_burst_key(self, ca: CertificateAuthority) -> Certificate:
        """Rotate the short-lived key; keeps the old cert for verification."""
        old = self._scpu_rt.public_keys()["burst"]
        cert = self._scpu_rt.rotate_burst_key(ca)
        assert cert is not None
        self._burst_certificates.append(ca.certify(old, role="burst", now=self.now))
        return cert

    def make_client(self, ca: CertificateAuthority, clock=None,
                    freshness_window: float = 300.0,
                    accept_unverifiable: bool = False) -> WormClient:
        """Build a verifying client bootstrapped from *ca*."""
        return WormClient(
            ca_public_key=ca.root_public_key,
            certificates=self.certificates(ca),
            clock=clock if clock is not None else self.scpu.clock,
            freshness_window=freshness_window,
            accept_unverifiable=accept_unverifiable,
        )

    # ------------------------------------------------------- simulation hooks

    def attach_retention_process(self, sim) -> None:
        """Run the RM as a simulation process with alarm interrupts."""
        self._rm_process = sim.process(self.retention.process(sim))
