"""Replicated WORM: availability against outright destruction.

WORM detection makes tampering *evident* but cannot stop Mallory simply
destroying a store (§3 notes enterprise reality: "the associated magnetic
media MTBFs will lead to several failed disks per day").  The standard
answer is replication — and it composes cleanly with the Strong WORM
design because every replica carries its own SCPU and its own complete
proof system:

* a **write** commits to every replica (each SCPU witnesses
  independently; per-replica SNs differ, so a logical *record id* maps to
  the tuple of replica SNs);
* a **read** is served by the first replica whose proof verifies — one
  honest surviving replica suffices for both availability *and*
  integrity, since verification never trusts the serving host;
* a **divergence audit** cross-checks replicas byte-for-byte: verified
  replicas disagreeing on content is impossible without a signature
  break, so any divergence localizes which replicas are tampered/failed.

There is no consensus protocol here on purpose: WORM writes are
idempotent appends of immutable data, so "write to all, read from any
verifiable" is sufficient, and partial write failures are surfaced to
the writer for retry rather than papered over.

For **cross-site** disaster recovery this synchronous mirror is
superseded by :mod:`repro.recovery`: an asynchronous replica role
(:class:`~repro.recovery.replication.ReplicationPump` +
:class:`~repro.recovery.stages.SiteRecovery`) that tolerates WAN loss
and delay and rebuilds a dead site with full verification.
:class:`MirroredWormStore` remains the right tool *within* a site,
where the link is reliable and every replica can afford its own SCPU
witnessing per write.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.client import WormClient
from repro.core.errors import FreshnessError, VerificationError, WormError
from repro.core.worm import StrongWormStore, WriteReceipt
from repro.hardware.tamper import TamperedError
from repro.obs.bus import NULL_BUS, TelemetryBus

__all__ = ["MirroredWormStore", "MirroredWrite", "DivergenceReport"]


@dataclass(frozen=True)
class MirroredWrite:
    """One logical record: its id and the per-replica receipts."""

    record_id: int
    receipts: Tuple[WriteReceipt, ...]

    @property
    def replica_sns(self) -> Tuple[int, ...]:
        return tuple(r.sn for r in self.receipts)


@dataclass
class DivergenceReport:
    """Outcome of a cross-replica audit.

    Beyond the clean/dirty verdict, the report localizes damage per
    replica: ``replica_sn_ranges`` gives each replica's audited SN span
    (its local serial-number space — replicas witness independently, so
    the spans differ), and ``suspect_sns`` lists, per replica, the
    local SNs that failed verification or disagreed — the work list a
    repair pass (or a :class:`repro.recovery.SiteRecovery`) starts from.
    """

    checked: int = 0
    divergent: List[Tuple[int, str]] = field(default_factory=list)
    unavailable: List[Tuple[int, int]] = field(default_factory=list)  # (record, replica)
    #: replica index -> (lowest, highest) local SN covered by the audit
    #: (``None`` for a replica with no audited records).
    replica_sn_ranges: Dict[int, Optional[Tuple[int, int]]] = (
        field(default_factory=dict))
    #: replica index -> its local SNs that were unverifiable or divergent.
    suspect_sns: Dict[int, List[int]] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.divergent


class MirroredWormStore:
    """N-way mirrored Strong WORM stores with verify-on-read fail-over."""

    def __init__(self, stores: Sequence[StrongWormStore],
                 clients: Sequence[WormClient],
                 obs: Optional[TelemetryBus] = None) -> None:
        if len(stores) < 2:
            raise ValueError("mirroring needs at least two replicas")
        if len(stores) != len(clients):
            raise ValueError("one verifying client per replica is required")
        self._stores = list(stores)
        self._clients = list(clients)
        self._records: Dict[int, Tuple[int, ...]] = {}  # id -> per-replica SNs
        self._next_id = 0
        self.obs = obs if obs is not None else NULL_BUS
        if self.obs.enabled:
            self.obs.declare_counter("replication.divergences")

    @property
    def replica_count(self) -> int:
        return len(self._stores)

    @property
    def record_count(self) -> int:
        return len(self._records)

    # -- writes -----------------------------------------------------------

    def write(self, records: Sequence[bytes], **write_kwargs) -> MirroredWrite:
        """Commit to every replica; raises if *any* replica write fails.

        A failed replica leaves the successfully written copies in place
        (they are immutable records; re-running the write after repair
        simply creates a fresh logical id) — the error tells the caller
        durability is degraded *now*, which beats finding out later.
        """
        receipts: List[WriteReceipt] = []
        failures: List[str] = []
        for index, store in enumerate(self._stores):
            try:
                receipts.append(store.write(records, **write_kwargs))
            except TamperedError:
                # A replica's card zeroized mid-write: terminal for that
                # replica and loud for the caller — never fold a tamper
                # trip into the "degraded" summary string.
                raise
            except Exception as exc:  # pragma: no cover - store bugs
                failures.append(f"replica {index}: {exc}")
        if failures:
            raise WormError("replicated write degraded: " + "; ".join(failures))
        self._next_id += 1
        record_id = self._next_id
        self._records[record_id] = tuple(r.sn for r in receipts)
        return MirroredWrite(record_id=record_id, receipts=tuple(receipts))

    # -- reads ------------------------------------------------------------------

    def read_verified(self, record_id: int) -> bytes:
        """Serve from the first replica whose proof verifies.

        Tampered or dead replicas are skipped; only if *every* replica
        fails does the read fail — with all the per-replica reasons.
        """
        sns = self._records.get(record_id)
        if sns is None:
            raise WormError(f"unknown record id {record_id}")
        reasons: List[str] = []
        for index, (store, client, sn) in enumerate(
                zip(self._stores, self._clients, sns)):
            try:
                verified = client.verify_read(store.read(sn), sn)
            except (VerificationError, FreshnessError, WormError,  # wormlint: disable=W004,W008 - read path skips bad replicas; raises when all fail
                    TamperedError) as exc:
                reasons.append(f"replica {index}: {type(exc).__name__}: {exc}")
                continue
            if verified.status != "active":
                reasons.append(f"replica {index}: status {verified.status}")
                continue
            return verified.data
        raise WormError(
            f"record {record_id} unavailable on all replicas: "
            + " | ".join(reasons))

    # -- lifecycle --------------------------------------------------------------

    def maintenance(self) -> List[Dict[str, int]]:
        """Run maintenance on every replica."""
        return [store.maintenance() for store in self._stores]

    def advance_clocks(self, seconds: float) -> None:
        """Advance every replica's (manual) clock in lock-step."""
        for store in self._stores:
            store.scpu.clock.advance(seconds)

    # -- divergence auditing --------------------------------------------------------

    def audit_divergence(self) -> DivergenceReport:
        """Cross-check every logical record across the replicas.

        Content is compared only between replicas whose proofs verify;
        any byte disagreement between *verified* replicas would require a
        signature forgery, so in practice divergence pinpoints replicas
        whose verification already failed (tampered) or that lost data.
        """
        report = DivergenceReport()
        for index in range(len(self._stores)):
            local = [sns[index] for sns in self._records.values()]
            report.replica_sn_ranges[index] = (
                (min(local), max(local)) if local else None)
        for record_id, sns in sorted(self._records.items()):
            report.checked += 1
            contents: Dict[int, bytes] = {}
            statuses: Dict[int, str] = {}
            suspects: List[int] = []
            for index, (store, client, sn) in enumerate(
                    zip(self._stores, self._clients, sns)):
                try:
                    verified = client.verify_read(store.read(sn), sn)
                except (VerificationError, FreshnessError, WormError,  # wormlint: disable=W004,W008 - divergence audit records tampered replicas as findings
                        TamperedError) as exc:
                    report.unavailable.append((record_id, index))
                    report.suspect_sns.setdefault(index, []).append(sn)
                    statuses[index] = f"unverifiable: {type(exc).__name__}"
                    continue
                statuses[index] = verified.status
                if verified.status == "active":
                    contents[index] = verified.data
            distinct = set(contents.values())
            if len(distinct) > 1:
                # Content disagreement between *verified* replicas: mark
                # the minority (or on a tie, all of them) suspect.
                tally = Counter(contents.values())
                majority, majority_count = tally.most_common(1)[0]
                for index, data in contents.items():
                    if data != majority or majority_count * 2 <= len(contents):
                        suspects.append(index)
                report.divergent.append(
                    (record_id, f"verified replicas disagree: {statuses}"))
            elif not contents and any(s == "active" for s in statuses.values()):
                report.divergent.append((record_id, f"inconsistent: {statuses}"))
            for index in suspects:
                report.suspect_sns.setdefault(index, []).append(sns[index])
            if suspects or (not contents and any(
                    s == "active" for s in statuses.values())):
                self.obs.inc("replication.divergences")
        return report
