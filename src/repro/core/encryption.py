"""Encrypted WORM records with SCPU-backed crypto-shredding.

§1's Secure Deletion requirement says deleted records "should not be
recoverable even with unrestricted access to the underlying storage
medium".  Physical overwrite passes (:mod:`repro.core.shredding`) deliver
that for the medium the store controls — but not for media *copies* the
insider made before deletion, and not for worn-out disks swapped under
RAID.  The standard remedy (cited as related work in §3's encrypted
storage) is encryption at rest plus key destruction:

* every record is encrypted under a fresh random **DEK** (ChaCha20);
* the DEK is **wrapped** by the SCPU under an *epoch key* that exists
  only inside the enclosure's NVRAM;
* deletion shreds the ciphertext normally AND drops the record's wrapped
  DEK from the survivor set; the next **epoch rotation** re-wraps the
  survivors under a fresh epoch key and destroys the old one — at which
  point every hoarded copy of the deleted record (ciphertext + old
  wrapped DEK) is information-theoretically useless without breaking the
  cipher.

Integrity is unchanged: ``datasig`` covers the *ciphertext*, so all
Theorem 1/2 machinery (and the plain :class:`WormClient`) works untouched;
:class:`EncryptedWormStore` adds decryption on top of a verified read.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.client import WormClient
from repro.core.errors import WormError
from repro.core.worm import StrongWormStore, WriteReceipt
from repro.crypto.chacha import chacha20_xor
from repro.hardware.scpu import WrappedKey

__all__ = ["EncryptedWormStore", "EncryptedRead"]

#: Nonce used for record encryption: DEKs are single-use, so a fixed
#: nonce is safe (one key, one message) and saves storing per-record
#: nonces.  The *wrapping* uses random nonces (epoch keys wrap many DEKs).
_RECORD_NONCE = b"\x00" * 12


@dataclass(frozen=True)
class EncryptedRead:
    """A verified-and-decrypted read."""

    sn: int
    plaintext: bytes
    weakly_signed: bool


class EncryptedWormStore:
    """Encryption-at-rest layer over a :class:`StrongWormStore`.

    The wrapped-DEK table is untrusted state (anyone may copy it; only
    the SCPU can use it), keyed by SN.  ``auto_rotate`` controls whether
    every deletion batch immediately triggers an epoch rotation; large
    stores would rotate once per idle period instead
    (:meth:`shred_epoch`).
    """

    def __init__(self, store: StrongWormStore) -> None:
        self._store = store
        self._wrapped: Dict[int, WrappedKey] = {}
        self.rotations = 0

    @property
    def store(self) -> StrongWormStore:
        return self._store

    @property
    def current_epoch(self) -> int:
        return self._store.scpu.current_epoch

    # -- writes --------------------------------------------------------------

    def write(self, plaintext: bytes, **write_kwargs) -> WriteReceipt:
        """Encrypt under a fresh DEK and commit the ciphertext."""
        dek = secrets.token_bytes(32)
        ciphertext = chacha20_xor(dek, _RECORD_NONCE, plaintext)
        # Host-side stream encryption runs at SHA-like rates.
        self._store.host.meter.charge(
            "chacha", self._store.host.profile.sha_seconds(
                len(plaintext), self._store.host.hash_block_size))
        receipt = self._store.write([ciphertext], **write_kwargs)
        self._wrapped[receipt.sn] = self._store.scpu.wrap_key(dek)
        return receipt

    # -- reads ----------------------------------------------------------------

    def read_verified(self, client: WormClient, sn: int) -> EncryptedRead:
        """Verify the ciphertext record, unwrap the DEK, decrypt."""
        verified = client.verify_read(self._store.read(sn), sn)
        if verified.status != "active":
            raise WormError(f"SN {sn} is {verified.status}")
        wrapped = self._wrapped.get(sn)
        if wrapped is None:
            raise WormError(f"SN {sn} has no wrapped DEK (shredded?)")
        dek = self._store.scpu.unwrap_key(wrapped)
        self._store.host.meter.charge(
            "chacha", self._store.host.profile.sha_seconds(
                len(verified.data), self._store.host.hash_block_size))
        return EncryptedRead(sn=sn,
                             plaintext=chacha20_xor(dek, _RECORD_NONCE,
                                                    verified.data),
                             weakly_signed=verified.weakly_signed)

    # -- crypto-shredding -----------------------------------------------------------

    def shred_epoch(self) -> int:
        """Rotate the epoch key, dropping DEKs of no-longer-active records.

        Returns the number of DEKs destroyed.  Run during idle periods
        after the Retention Monitor has expired records; until this runs,
        a deleted record's DEK still technically exists inside the SCPU's
        current epoch (the paper's deferred-idle-work pattern applies to
        shredding exactly as it does to strengthening).
        """
        active = {sn: w for sn, w in self._wrapped.items()
                  if self._store.vrdt.is_active(sn)}
        destroyed = len(self._wrapped) - len(active)
        survivors = list(active.items())
        rewrapped = self._store.scpu.rotate_epoch([w for _, w in survivors])
        self._wrapped = {sn: new for (sn, _), new in zip(survivors, rewrapped)}
        self.rotations += 1
        return destroyed

    def maintenance(self, **kwargs) -> Dict[str, int]:
        """Run the store's maintenance, then rotate the shredding epoch."""
        summary = self._store.maintenance(**kwargs)
        summary["deks_destroyed"] = self.shred_epoch()
        return summary

    # -- encrypted migration ----------------------------------------------------------

    def migrate_to(self, dest: "EncryptedWormStore", ca) -> "object":
        """Compliant migration of an encrypted store (§1 + extension).

        Two coupled transfers:

        1. the normal record migration — ciphertexts and attributes move
           with full per-record verification at the destination;
        2. the **DEK handoff** — the source SCPU releases the migrated
           records' DEKs only after verifying the destination enclave's
           CA-certified key-transport key, sealed under an RSA-KEM shared
           secret; the destination rewraps them under its own epoch.

        DEK plaintext never exists outside the two enclosures.  Returns
        the record-migration report (with ``sn_mapping``).
        """
        from repro.core.migration import export_package, import_package
        package = export_package(self._store, ca)
        report = import_package(dest.store, package, ca)

        migrated_wraps = {sn: w for sn, w in self._wrapped.items()
                          if sn in report.sn_mapping}
        dest_public, dest_cert = dest.store.scpu.key_transport_public(ca)
        bundle = self._store.scpu.export_deks(
            migrated_wraps, dest_public, dest_cert, ca.root_public_key)
        rewrapped = dest.store.scpu.import_deks(bundle)
        for old_sn, wrapped in rewrapped.items():
            dest._wrapped[report.sn_mapping[old_sn]] = wrapped
        return report

    # -- persistence helpers ---------------------------------------------------------

    def wrapped_table(self) -> Dict[int, dict]:
        """Serialize the (untrusted) wrapped-DEK table."""
        return {sn: w.to_dict() for sn, w in self._wrapped.items()}

    def restore_wrapped_table(self, data: Dict) -> None:
        self._wrapped = {int(sn): WrappedKey.from_dict(w)
                         for sn, w in data.items()}
