"""Store auditing: the investigator's full-sweep verification.

The threat model's Bob (§2.1 — "e.g., federal investigators") does not
read single records; he sweeps the store and demands that *every* serial
number ever issued is accounted for: active and verifiable, deleted with
proof, or beyond the signed allocation frontier.  The monotonic
consecutive SNs (§4.2.1) are what make this sweep complete — there is no
place for a record to hide between serial numbers.

:class:`StoreAuditor` runs that sweep through a verifying
:class:`~repro.core.client.WormClient` and produces an
:class:`AuditReport`:

* per-SN outcomes (verified-active / proven-deleted / never-allocated /
  **violation**),
* compliance statistics (records near end-of-retention, active holds,
  weakly signed records still awaiting strengthening),
* a pass/fail verdict: a store with any violation has provably been
  tampered with.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.client import WormClient
from repro.core.errors import (
    FreshnessError,
    UnknownSerialNumberError,
    VerificationError,
    WormError,
)
from repro.core.worm import StrongWormStore

__all__ = ["AuditFinding", "AuditReport", "StoreAuditor"]


@dataclass(frozen=True)
class AuditFinding:
    """One audited serial number and its verdict."""

    sn: int
    verdict: str          # "active" | "deleted" | "never-allocated" | "violation"
    detail: str = ""
    weakly_signed: bool = False


@dataclass
class AuditReport:
    """The outcome of one full-store sweep."""

    audited_at: float = 0.0
    frontier_sn: int = 0
    findings: List[AuditFinding] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.findings)

    @property
    def violations(self) -> List[AuditFinding]:
        return [f for f in self.findings if f.verdict == "violation"]

    @property
    def active_count(self) -> int:
        return sum(1 for f in self.findings if f.verdict == "active")

    @property
    def deleted_count(self) -> int:
        return sum(1 for f in self.findings if f.verdict == "deleted")

    @property
    def weakly_signed_count(self) -> int:
        return sum(1 for f in self.findings if f.weakly_signed)

    @property
    def clean(self) -> bool:
        """True when every SN verified — no evidence of tampering."""
        return not self.violations

    def summary(self) -> Dict[str, int]:
        return {
            "total": self.total,
            "active": self.active_count,
            "deleted": self.deleted_count,
            "violations": len(self.violations),
            "weakly_signed": self.weakly_signed_count,
        }


class StoreAuditor:
    """Sweeps a store through a verifying client.

    The auditor only uses the *public* read/verify interface — exactly
    what an external investigator gets — plus optional store-side
    statistics for the compliance overview (retention horizons, queue
    backlogs) that an operator-facing audit would include.
    """

    def __init__(self, store: StrongWormStore, client: WormClient) -> None:
        self._store = store
        self._client = client

    def sweep(self, start_sn: int = 1,
              end_sn: Optional[int] = None) -> AuditReport:
        """Audit every SN in [start_sn, end_sn] (frontier by default).

        The sweep also probes one SN *beyond* the frontier to confirm the
        store proves non-allocation rather than stonewalling.
        """
        frontier = self._store.scpu.current_serial_number
        end = end_sn if end_sn is not None else frontier
        report = AuditReport(audited_at=self._client.now, frontier_sn=frontier)
        for sn in list(range(start_sn, end + 1)) + [frontier + 1]:
            report.findings.append(self._audit_one(sn))
        return report

    def _audit_one(self, sn: int) -> AuditFinding:
        try:
            result = self._store.read(sn)
        except UnknownSerialNumberError as exc:
            # The honest store cannot even construct a proof: an insider
            # destroyed VRDT state without covering their tracks.
            return AuditFinding(sn=sn, verdict="violation",
                                detail=f"store cannot answer: {exc}")
        except WormError as exc:  # pragma: no cover - defensive  # wormlint: disable=W004,W008 - the auditor's job is recording failures as violations
            return AuditFinding(sn=sn, verdict="violation",
                                detail=f"read failed: {exc}")
        try:
            verified = self._client.verify_read(result, sn)
        except (VerificationError, FreshnessError) as exc:
            return AuditFinding(sn=sn, verdict="violation",
                                detail=f"{type(exc).__name__}: {exc}")
        return AuditFinding(sn=sn, verdict=verified.status,
                            weakly_signed=verified.weakly_signed)

    def compliance_overview(self, horizon_seconds: float = 30 * 24 * 3600.0
                            ) -> Dict[str, object]:
        """Operator-facing stats to accompany the sweep.

        ``horizon_seconds`` controls the "expiring soon" window.
        """
        store = self._store
        now = store.now
        expiring_soon: List[int] = []
        held: List[int] = []
        for sn in store.vrdt.active_sns:
            vrd = store.vrdt.get_active(sn)
            if vrd is None:  # pragma: no cover - race with expiry
                continue
            if vrd.attr.litigation_hold and now < vrd.attr.litigation_timeout:
                held.append(sn)
            elif now <= vrd.attr.expires_at <= now + horizon_seconds:
                expiring_soon.append(sn)
        return {
            "active_records": len(store.vrdt.active_sns),
            "expiring_within_horizon": expiring_soon,
            "litigation_holds": held,
            "strengthening_backlog": len(store.strengthening),
            "strengthening_overdue": store.strengthening.overdue_count(now),
            "unverified_host_hashes": len(store.hash_verification),
            "hash_mismatches_found": list(store.hash_verification.mismatches),
            "vrdt_bytes": store.vrdt.estimated_bytes(),
            "vexp_needs_rescan": store.retention.vexp.needs_rescan,
        }
