"""Window management (§4.2.1): O(1) authentication over monotonic SNs.

This is the paper's replacement for Merkle trees.  Because serial numbers
are issued consecutively and monotonically, the set of *possibly active*
records is always the window ``[SN_base, SN_current]``; the SCPU signs
the two boundaries (O(1) per update) instead of maintaining an O(log n)
authenticated structure.  Out-of-order expiry inside the window is handled
by per-record deletion proofs, compacted into signed deletion windows when
3 or more consecutive SNs have expired.

:class:`WindowManager` is the *main-CPU-side* orchestration: it watches
the VRDT, asks the SCPU (which validates all evidence itself — see
:meth:`~repro.hardware.scpu.SecureCoprocessor.advance_sn_base`) for base
advances, window compactions and freshness refreshes, and serves the
signed artifacts to the read path.  It holds no trust: everything it
stores lands in the (untrusted) VRDT artifact area.

Freshness (§4.2.1, mechanism (ii)): ``S_s(SN_current)`` carries a
timestamp; the SCPU refreshes it every ``refresh_interval`` seconds even
when idle, and clients refuse staler values, so the main CPU cannot hide
recent records behind an old upper bound.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.errors import TamperedError
from repro.crypto.envelope import SignedEnvelope
from repro.hardware.scpu import SecureCoprocessor
from repro.storage.vrdt import DeletionWindow, VrdTable

__all__ = ["WindowManager"]


class WindowManager:
    """Maintains the signed window state for one store."""

    def __init__(self, scpu: SecureCoprocessor, vrdt: VrdTable,
                 refresh_interval: float = 120.0,
                 base_validity: float = 24 * 3600.0,
                 compaction_threshold: int = 3) -> None:
        if refresh_interval <= 0:
            raise ValueError("refresh interval must be positive")
        if compaction_threshold < 3:
            raise ValueError("the paper requires windows of 3 or more expired VRs")
        self._scpu = scpu
        self._vrdt = vrdt
        self.refresh_interval = refresh_interval
        self.base_validity = base_validity
        self.compaction_threshold = compaction_threshold
        self.refresh_count = 0
        self.compaction_count = 0
        # Main-CPU mirror of the last-observed window bounds, so the
        # read path keeps classifying after the card zeroizes (proofs
        # are *stored* artifacts, §4.2.2 — a dead SCPU stops writes and
        # refreshes, never reads).  Untrusted, like everything here.
        self._last_current = 0
        self._last_base = 1

    # -- freshness -----------------------------------------------------------

    def refresh_current(self, force: bool = False) -> SignedEnvelope:
        """Ensure ``S_s(SN_current)`` is fresh; re-sign if due or forced.

        Called after every write (the SN advanced) and by the idle loop
        every few minutes (so an idle store still presents fresh bounds).
        """
        current = self.observed_current()
        envelope = self._vrdt.sn_current_envelope
        # Deliberately NOT re-signed on every SN change: that would cost a
        # strong signature per write and halve throughput.  The bound may
        # lag the true frontier by up to one refresh interval — the
        # §4.2.1 freshness design accepts exactly this bounded staleness.
        stale = (
            envelope is None
            or self._scpu.now - envelope.timestamp >= self.refresh_interval
        )
        if force or stale:
            envelope = self._scpu.sign_sn_current(current)
            self._vrdt.sn_current_envelope = envelope
            self.refresh_count += 1
        assert envelope is not None
        return envelope

    def refresh_base(self, force: bool = False) -> SignedEnvelope:
        """Ensure ``S_s(SN_base)`` exists and has not expired."""
        envelope = self._vrdt.sn_base_envelope
        stale = (
            envelope is None
            or int(envelope.field("sn_base")) != self.observed_base()
            or self._scpu.now * 1e6 >= int(envelope.field("expires_at_us")) - self.refresh_interval * 1e6
        )
        if force or stale:
            envelope = self._scpu.sign_sn_base(self.base_validity)
            self._vrdt.sn_base_envelope = envelope
        assert envelope is not None
        return envelope

    # -- base advancement -------------------------------------------------------

    def try_advance_base(self) -> bool:
        """Advance ``SN_base`` past a fully expired prefix, if any.

        Runs during idle periods.  Returns True when the base moved, in
        which case the now-redundant deletion proofs and windows below
        the new base have been expelled from the VRDT (§4.2.1's storage
        saving).
        """
        old_base = self._scpu.sn_base
        lowest_active = self._vrdt.lowest_active_sn
        if lowest_active is None:
            new_base = self._scpu.current_serial_number + 1
        else:
            new_base = lowest_active
        if new_base <= old_base:
            return False
        proofs: Dict[int, SignedEnvelope] = {}
        windows: List[Tuple[SignedEnvelope, SignedEnvelope]] = []
        for sn in range(old_base, new_base):
            window = self._vrdt.window_covering(sn)
            if window is not None:
                windows.append((window.lower, window.upper))
                continue
            proof = self._vrdt.get_deletion_proof(sn)
            if proof is None:
                # A hole: some SN below the lowest active one has neither
                # proof nor window — it must still be awaiting deletion.
                return False
            proofs[sn] = proof
        new_base_env = self._scpu.advance_sn_base(new_base, proofs, windows=windows)
        self._vrdt.sn_base_envelope = new_base_env
        # Expel artifacts the window scheme has made redundant.
        self._vrdt.drop_proofs(iter(list(proofs)))
        self._vrdt.deletion_windows = [
            w for w in self._vrdt.deletion_windows if w.high_sn >= new_base
        ]
        return True

    # -- deletion-window compaction ------------------------------------------------

    def compact_expired_runs(self, limit: Optional[int] = None) -> int:
        """Compact contiguous expired runs into signed deletion windows.

        Each compaction trades two SCPU signatures (plus proof
        verifications) for dropping ≥3 stored deletion proofs — run
        "during idle periods" per the paper since it costs trusted
        cycles.  Returns the number of windows created; *limit* bounds
        the work done in one idle slice.
        """
        created = 0
        for low, high in self._vrdt.contiguous_expired_runs(self.compaction_threshold):
            if limit is not None and created >= limit:
                break
            proofs = {}
            for sn in range(low, high + 1):
                proof = self._vrdt.get_deletion_proof(sn)
                if proof is None:  # pragma: no cover - runs come from proofs
                    break
                proofs[sn] = proof
            else:
                lower, upper = self._scpu.compact_deletion_window(low, high, proofs)
                self._vrdt.deletion_windows.append(DeletionWindow(lower, upper))
                self._vrdt.drop_proofs(iter(range(low, high + 1)))
                created += 1
        if created:
            self.compaction_count += created
        return created

    # -- read-path classification -----------------------------------------------

    def observed_current(self) -> int:
        """``SN_current`` as last seen — live when the card is alive,
        the frozen final value after zeroization."""
        try:
            self._last_current = self._scpu.current_serial_number
        except TamperedError:  # wormlint: disable=W004 - last-observed mirror: dead cards keep serving verifiable reads
            pass
        return self._last_current

    def observed_base(self) -> int:
        """``SN_base`` as last seen (same degraded-read contract)."""
        try:
            self._last_base = self._scpu.sn_base
        except TamperedError:  # wormlint: disable=W004 - last-observed mirror: dead cards keep serving verifiable reads
            pass
        return self._last_base

    def classify(self, sn: int) -> str:
        """Which proof case applies to *sn* right now (see proofs module)."""
        if sn > self.observed_current():
            return "never-allocated"
        if sn < self.observed_base():
            return "below-base"
        if self._vrdt.is_active(sn):
            return "active"
        if self._vrdt.get_deletion_proof(sn) is not None:
            return "deletion-proof"
        if self._vrdt.window_covering(sn) is not None:
            return "deletion-window"
        # Inside the window but unaccounted for: the VRDT lost an entry —
        # clients will catch this as a verification failure.
        return "missing"
