"""Proof objects the store presents to reading clients (§4.2.2 Read).

A read of serial number ``v`` yields exactly one of:

* **active** — the VRD plus record data, checkable against metasig/datasig,
  together with the fresh ``S_s(SN_current)`` (so the client knows the SN
  range that must be accounted for);
* **deleted, individually proven** — the deletion proof ``S_d(v.SN)``;
* **deleted, below the base** — ``S_s(SN_base)`` with ``v.SN < SN_base``;
* **deleted, inside a compacted window** — the correlated signed
  lower/upper bounds of a deletion window containing ``v.SN``;
* **never allocated** — ``v.SN > SN_current`` under the fresh signed
  ``S_s(SN_current)``.

Clients must treat any response that fits none of these as tampering
(Theorems 1 and 2 rest on this case analysis being exhaustive).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.crypto.envelope import SignedEnvelope
from repro.storage.vrd import VirtualRecordDescriptor

__all__ = [
    "ProofKind",
    "ActiveProof",
    "DeletionProofResponse",
    "BaseBoundProof",
    "DeletionWindowProof",
    "NeverAllocatedProof",
    "ReadResult",
]


class ProofKind:
    """Discriminators for the read-proof case analysis."""

    ACTIVE = "active"
    DELETION_PROOF = "deletion-proof"
    BELOW_BASE = "below-base"
    DELETION_WINDOW = "deletion-window"
    NEVER_ALLOCATED = "never-allocated"


@dataclass(frozen=True)
class ActiveProof:
    """Companion proof for a successful read: the fresh upper window bound."""

    kind = ProofKind.ACTIVE
    sn_current: SignedEnvelope


@dataclass(frozen=True)
class DeletionProofResponse:
    """``S_d(SN)``: the record existed and was rightfully deleted."""

    kind = ProofKind.DELETION_PROOF
    proof: SignedEnvelope


@dataclass(frozen=True)
class BaseBoundProof:
    """``S_s(SN_base)`` with the target SN below it: rightfully deleted."""

    kind = ProofKind.BELOW_BASE
    sn_base: SignedEnvelope


@dataclass(frozen=True)
class DeletionWindowProof:
    """Correlated window bounds covering the target SN (§4.2.1 multi-window)."""

    kind = ProofKind.DELETION_WINDOW
    lower: SignedEnvelope
    upper: SignedEnvelope


@dataclass(frozen=True)
class NeverAllocatedProof:
    """Fresh ``S_s(SN_current)`` with the target SN above it: never stored."""

    kind = ProofKind.NEVER_ALLOCATED
    sn_current: SignedEnvelope


@dataclass(frozen=True)
class ReadResult:
    """What the (untrusted) store returns for a read of one SN.

    ``status`` is ``"active"``, ``"deleted"`` or ``"never-allocated"``.
    For active reads, ``vrd`` and ``records`` (one payload per RD in the
    RDL) are set; in every case ``proof`` carries the construct(s) the
    client must verify before believing the status.
    """

    sn: int
    status: str
    proof: object
    vrd: Optional[VirtualRecordDescriptor] = None
    records: Tuple[bytes, ...] = ()

    @property
    def data(self) -> bytes:
        """Concatenated record payloads (convenience for single-record VRs)."""
        return b"".join(self.records)
