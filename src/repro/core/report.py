"""Compliance reporting: the regulator-facing paper trail.

Regulated operators must periodically demonstrate compliance, not merely
be compliant.  :func:`generate_report` combines a full audit sweep, the
operator overview, the policy inventory, and the deferred-work health
checks into one plain-text report suitable for filing — the artifact a
compliance officer runs quarterly, and the thing an examiner asks for
first.

The verdict logic is deliberately strict:

* any audit **violation** → ``FAIL`` (evidence of tampering);
* overdue strengthening or unverified host hashes past their horizon →
  ``WARN`` (the §4.3 safety margin is being consumed);
* otherwise ``PASS``.
"""

from __future__ import annotations

from datetime import datetime, timezone
from dataclasses import dataclass
from typing import List, Optional

from repro.core.audit import AuditReport, StoreAuditor
from repro.core.client import WormClient
from repro.core.worm import StrongWormStore
from repro.sim.metrics import format_table

__all__ = ["ComplianceReport", "generate_report"]


@dataclass
class ComplianceReport:
    """A rendered report plus its machine-readable verdict."""

    verdict: str          # "PASS" | "WARN" | "FAIL"
    text: str
    audit: AuditReport
    warnings: List[str]

    @property
    def clean(self) -> bool:
        return self.verdict == "PASS"


def generate_report(store: StrongWormStore, client: WormClient,
                    title: str = "WORM store compliance report",
                    wall_time: Optional[float] = None) -> ComplianceReport:
    """Run the sweep and render the full report."""
    store.windows.refresh_current(force=True)
    auditor = StoreAuditor(store, client)
    audit = auditor.sweep()
    overview = auditor.compliance_overview()

    warnings: List[str] = []
    if overview["strengthening_overdue"]:
        warnings.append(
            f"{overview['strengthening_overdue']} weak construct(s) past "
            "their strengthening deadline — schedule maintenance NOW")
    if store.strengthening.lifetime_violations:
        warnings.append(
            f"{store.strengthening.lifetime_violations} construct(s) were "
            "strengthened after their security lifetime lapsed")
    if overview["hash_mismatches_found"]:
        warnings.append(
            f"host-hash mismatches on SNs {overview['hash_mismatches_found']}"
            " — the main CPU lied during a burst")
    if overview["vexp_needs_rescan"]:
        warnings.append("VEXP under capacity pressure — night scan pending")
    if audit.weakly_signed_count:
        warnings.append(
            f"{audit.weakly_signed_count} record(s) still weakly signed")

    if not audit.clean:
        verdict = "FAIL"
    elif warnings:
        verdict = "WARN"
    else:
        verdict = "PASS"

    lines: List[str] = []
    lines.append("=" * 68)
    lines.append(title)
    # Reports are stamped in *virtual* time so identical runs file
    # identical reports; a caller with a real calendar (the CLI's
    # persistent stores) passes its wall clock in explicitly.
    if wall_time is not None:
        calendar = datetime.fromtimestamp(
            wall_time, tz=timezone.utc).strftime("%a %b %d %H:%M:%S %Y UTC")
        lines.append(f"generated: {calendar}  "
                     f"(store virtual time {store.now:.0f}s)")
    else:
        lines.append(f"generated: store virtual time {store.now:.0f}s")
    lines.append(f"VERDICT: {verdict}")
    lines.append("=" * 68)

    lines.append("")
    lines.append(format_table(
        ["metric", "value"],
        [["serial numbers issued", store.scpu.current_serial_number],
         ["SN base (window floor)", store.scpu.sn_base],
         ["active records", overview["active_records"]],
         ["records audited", audit.total],
         ["audit violations", len(audit.violations)],
         ["litigation holds", len(overview["litigation_holds"])],
         ["expiring within horizon", len(overview["expiring_within_horizon"])],
         ["strengthening backlog", overview["strengthening_backlog"]],
         ["unverified host hashes", overview["unverified_host_hashes"]],
         ["VRDT footprint (bytes)", overview["vrdt_bytes"]]],
        title="Store summary"))

    if audit.violations:
        lines.append("")
        lines.append(format_table(
            ["SN", "detail"],
            [[f.sn, f.detail[:56]] for f in audit.violations],
            title="TAMPERING EVIDENCE"))

    if warnings:
        lines.append("")
        lines.append("Warnings:")
        for warning in warnings:
            lines.append(f"  - {warning}")

    lines.append("")
    lines.append(format_table(
        ["policy", "retention", "secure deletion", "citation"],
        [[p.name,
          f"{p.retention_seconds / (365 * 24 * 3600):.1f}y",
          p.shredding_algorithm if p.secure_deletion_required else "-",
          p.citation[:36]]
         for p in sorted(store.policies, key=lambda p: p.name)],
        title="Policy inventory"))

    return ComplianceReport(verdict=verdict, text="\n".join(lines),
                            audit=audit, warnings=warnings)
