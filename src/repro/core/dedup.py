"""Content-addressed deduplication for shared records (§4.2).

The paper motivates VR overlap with "repeatedly stored objects (such as
popular email attachments) to potentially be stored only once".  The WORM
layer itself deliberately ignores indexing ("we do not discuss name
spaces, indexing or content addressing"), so this module supplies the
piece a deployment layers on top: a content-addressed index that turns
"store these bytes" into either a fresh record or a
:class:`~repro.storage.record.RecordDescriptor` reference to an
already-stored identical payload.

Safety considerations baked in:

* the index is untrusted state — a wrong entry cannot corrupt anything,
  because the *store* re-reads the referenced bytes and the SCPU's
  datasig covers what was actually hashed; a poisoned index entry yields
  a record whose content is wrong-but-signed-as-what-it-is, caught the
  moment the depositor verifies their own write (:meth:`deposit`'s
  ``verify`` flag does this automatically);
* reference counting tracks how many *active* VRs share each payload, so
  the expiry path knows when the last referent is gone (the store already
  refuses to shred still-referenced records; the index keeps lookups from
  resurrecting expired payloads).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.core.worm import StrongWormStore, WriteReceipt
from repro.storage.record import RecordDescriptor

__all__ = ["DedupIndex", "DepositOutcome"]


@dataclass(frozen=True)
class DepositOutcome:
    """Result of one deduplicating deposit."""

    receipt: WriteReceipt
    new_payload_bytes: int
    shared_payload_bytes: int

    @property
    def bytes_saved(self) -> int:
        return self.shared_payload_bytes


class DedupIndex:
    """Content-addressed index over one store's committed records."""

    def __init__(self, store: StrongWormStore) -> None:
        self._store = store
        # content digest -> RecordDescriptor of the canonical copy
        self._by_digest: Dict[bytes, RecordDescriptor] = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _digest(payload: bytes) -> bytes:
        return hashlib.sha256(payload).digest()

    def _lookup(self, payload: bytes) -> Optional[RecordDescriptor]:
        """Find a live, byte-identical committed copy of *payload*.

        The candidate's bytes are re-read and compared — the index is a
        hint, never an authority (hash collisions and poisoned entries
        both fail the comparison).
        """
        rd = self._by_digest.get(self._digest(payload))
        if rd is None:
            return None
        if rd.key not in self._store.blocks:
            del self._by_digest[self._digest(payload)]
            return None
        candidate = self._store.retry.call(
            "block_store.get", self._store.blocks.get, rd.key)
        if candidate != payload:
            return None  # poisoned or collided entry: ignore it
        return rd

    def deposit(self, payloads: Sequence[bytes],
                **write_kwargs) -> DepositOutcome:
        """Commit a VR whose duplicate payloads are shared, not copied."""
        plan: list = []
        new_bytes = 0
        shared_bytes = 0
        pending: list = []  # (payload, position) for index update
        for payload in payloads:
            existing = self._lookup(payload)
            if existing is not None:
                self.hits += 1
                shared_bytes += len(payload)
                plan.append(existing)
            else:
                self.misses += 1
                new_bytes += len(payload)
                plan.append(payload)
                pending.append((payload, len(plan) - 1))
        receipt = self._store.write(plan, **write_kwargs)
        for payload, position in pending:
            self._by_digest[self._digest(payload)] = receipt.vrd.rdl[position]
        return DepositOutcome(receipt=receipt, new_payload_bytes=new_bytes,
                              shared_payload_bytes=shared_bytes)

    def forget_expired(self) -> int:
        """Drop index entries whose payloads have been shredded."""
        stale = [digest for digest, rd in self._by_digest.items()
                 if rd.key not in self._store.blocks]
        for digest in stale:
            del self._by_digest[digest]
        return len(stale)

    @property
    def unique_payloads(self) -> int:
        return len(self._by_digest)

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "unique_payloads": self.unique_payloads}
