"""Exception hierarchy of the WORM layer."""

from __future__ import annotations

__all__ = [
    "WormError",
    "RetentionViolationError",
    "LitigationHoldError",
    "UnknownSerialNumberError",
    "VerificationError",
    "FreshnessError",
    "CredentialError",
    "MigrationError",
    "SecureMemoryError",
]


class WormError(Exception):
    """Base class for all WORM-layer errors."""


class RetentionViolationError(WormError):
    """An operation would delete or alter a record inside its retention period."""


class LitigationHoldError(WormError):
    """A record under litigation hold cannot be deleted or released improperly."""


class UnknownSerialNumberError(WormError):
    """The serial number does not correspond to any response the store can prove."""


class VerificationError(WormError):
    """A client-side proof check failed — evidence of tampering."""


class FreshnessError(VerificationError):
    """A presented construct is older than the client's freshness window.

    Raised when the main CPU offers a stale ``S_s(SN_current)`` (the
    record-hiding attack of §4.2.1) or an expired ``S_s(SN_base)``.
    """


class CredentialError(WormError):
    """A litigation credential failed SCPU-side verification."""


class MigrationError(WormError):
    """Compliant migration failed verification at the destination."""


class SecureMemoryError(WormError):
    """An SCPU-resident structure exceeded the secure memory budget."""
