"""Exception hierarchy of the WORM layer.

Every public exception the package raises is rooted at
:class:`WormError`, so callers can catch the whole family with one
clause.  Three historically module-local exceptions are defined here and
re-exported from their original homes for back-compat:

* :class:`SignatureError` (née ``repro.crypto.rsa.SignatureError``),
* :class:`TamperedError` (née ``repro.hardware.tamper.TamperedError``),
* :class:`MissingRecordError` (née
  ``repro.storage.block_store.MissingRecordError``; it keeps
  :class:`KeyError` as a secondary base so existing ``except KeyError``
  call sites continue to work).

Every class carries a stable, machine-readable ``code`` — a kebab-case
slug unique across the taxonomy.  Problem payloads (RFC 9457 style, see
:mod:`repro.service.problems`) and telemetry key on ``exc.code``, never
on Python class names, so renaming or moving an exception class cannot
silently change what clients see on the wire.  A rename of a *code* is
an API break and is locked by the service contract tests.
"""

from __future__ import annotations

__all__ = [
    "WormError",
    "RetentionViolationError",
    "LitigationHoldError",
    "UnknownSerialNumberError",
    "VerificationError",
    "FreshnessError",
    "CredentialError",
    "MigrationError",
    "SecureMemoryError",
    "SignatureError",
    "TamperedError",
    "MissingRecordError",
    "UnknownPolicyError",
    "UnknownAlgorithmError",
    "ShardRoutingError",
    "TransientFaultError",
    "ScpuUnavailableError",
    "StorageUnavailableError",
    "DegradedError",
    "CrashError",
    "JournalError",
    "ReplicationError",
    "RecoveryError",
]


class WormError(Exception):
    """Base class for all WORM-layer errors.

    ``code`` is the stable machine-readable identity of each class —
    the string problem payloads and telemetry carry.  Subclasses
    override it with a unique kebab-case slug.
    """

    #: Stable wire identity; never derived from the class name.
    code: str = "worm-error"


class RetentionViolationError(WormError):
    """An operation would delete or alter a record inside its retention period."""

    code = "retention-violation"


class LitigationHoldError(WormError):
    """A record under litigation hold cannot be deleted or released improperly."""

    code = "litigation-hold"


class UnknownSerialNumberError(WormError):
    """The serial number does not correspond to any response the store can prove."""

    code = "unknown-serial-number"


class VerificationError(WormError):
    """A client-side proof check failed — evidence of tampering."""

    code = "verification-failed"


class FreshnessError(VerificationError):
    """A presented construct is older than the client's freshness window.

    Raised when the main CPU offers a stale ``S_s(SN_current)`` (the
    record-hiding attack of §4.2.1) or an expired ``S_s(SN_base)``.
    """

    code = "stale-construct"


class CredentialError(WormError):
    """A litigation credential failed SCPU-side verification."""

    code = "bad-credential"


class MigrationError(WormError):
    """Compliant migration failed verification at the destination."""

    code = "migration-failed"


class SecureMemoryError(WormError):
    """An SCPU-resident structure exceeded the secure memory budget."""

    code = "secure-memory-exhausted"


class SignatureError(WormError):
    """Raised when signing or verification cannot proceed."""

    code = "signature-error"


class TamperedError(WormError):
    """Raised by any SCPU service invoked after the enclosure was breached."""

    code = "tampered"


class MissingRecordError(WormError, KeyError):
    """Raised when a record key does not exist in the store."""

    code = "missing-record"


class UnknownPolicyError(WormError, KeyError):
    """A regulation-policy name is not registered.

    Keeps :class:`KeyError` as a secondary base: the policy registry
    historically raised ``KeyError`` and callers still catch it.
    """

    code = "unknown-policy"


class UnknownAlgorithmError(WormError, KeyError):
    """A shredding-algorithm name is not registered (same KeyError compat)."""

    code = "unknown-algorithm"


class ShardRoutingError(WormError):
    """A record locator names a shard the front-end does not have."""

    code = "shard-routing"


class TransientFaultError(WormError):
    """Base class of retryable device faults.

    A transient fault means the device refused or dropped *this* request
    but is expected to recover: retry with backoff.  Contrast with
    :class:`TamperedError`, which is permanent — the card zeroized itself
    and will never serve again.
    """

    code = "transient-fault"


class ScpuUnavailableError(TransientFaultError):
    """The SCPU dropped a request (bus glitch, firmware hiccup, reset).

    Also raised by the retry layer once a transient fault has exhausted
    its retry budget, so callers see one exception type for "the card did
    not answer" regardless of how many times we asked.
    """

    code = "scpu-unavailable"


class StorageUnavailableError(TransientFaultError):
    """The untrusted block store dropped an I/O request transiently."""

    code = "storage-unavailable"


class DegradedError(WormError):
    """An operation was refused because its failure domain is degraded.

    Raised when a caller insists on a *specific* shard whose SCPU has
    zeroized (the shard is read-only) — never by the best-effort write
    path, which routes around degraded shards instead.
    """

    code = "degraded"


class CrashError(WormError):
    """An injected process crash (fault harness only).

    Simulates the host dying at a chosen point — e.g. between group
    commit and journal acknowledgement.  Production code never raises
    this; chaos tests catch it and then model a restart.
    """

    code = "crash-injected"


class JournalError(WormError):
    """The durable intent journal is unreadable or inconsistent."""

    code = "journal-error"


class ReplicationError(WormError):
    """Cross-site replication could not keep its durability promise.

    Raised by the synchronous journal mirror when the replication link
    stays down past its retry budget: acknowledging a write whose
    journal entry never reached the standby would silently reopen the
    site-loss hole, so the ingest fails loud instead.
    """

    code = "replication-failed"


class RecoveryError(WormError):
    """Site recovery cannot proceed (structurally, not a tamper signal).

    Missing replica streams, an unverifiable-by-construction record
    (e.g. HMAC-witnessed, which only the dead source card could check),
    or a stage run out of order.  Evidence of *tampering* during
    recovery is never this class — that raises
    :class:`TamperedError` terminally (wormlint W004).
    """

    code = "recovery-failed"
