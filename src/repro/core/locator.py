"""Record locators: the stable, routable name of one committed record.

A :class:`RecordLocator` ``(shard_id, sn, record_index)`` names one
record anywhere in a deployment: ``shard_id`` routes to the owning
:class:`~repro.core.worm.StrongWormStore` (0 for a standalone store),
``sn`` is that shard's SCPU serial number, and ``record_index`` selects
the record inside a group-committed multi-record VR.  The packed string
form (``"2:41:0"``) survives being written down — which is what
compliance departments do with receipts — and is the locator
representation the service layer (:mod:`repro.service`) puts on the
wire.

Historically this type lived in :mod:`repro.core.sharded`; it moved
here so the single-store read path and the service front-end can accept
packed locators without importing the sharded front-end.  The old
import path still works.

Parsing is *strict*: every malformed input — truncated strings, stray
separators, non-numeric or negative components — raises
:class:`~repro.core.errors.ShardRoutingError`, never a bare
``ValueError``, so callers routing untrusted client-supplied locator
strings defend with the WORM taxonomy alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

from repro.core.errors import ShardRoutingError

__all__ = ["RecordLocator", "LocatorLike", "resolve_locator"]


@dataclass(frozen=True)
class RecordLocator:
    """Stable name of one record in a (possibly sharded) store.

    ``shard_id`` routes; ``sn`` is the shard-local serial number of the
    VR; ``record_index`` selects the record inside a group-committed
    multi-record VR.  The string form (``"2:41:0"``) survives being
    written down, which is what compliance departments do with receipts.
    """

    shard_id: int
    sn: int
    record_index: int = 0

    def pack(self) -> str:
        return f"{self.shard_id}:{self.sn}:{self.record_index}"

    @classmethod
    def unpack(cls, text: str) -> "RecordLocator":
        """Parse a packed locator; strict, taxonomy-rooted errors.

        Accepts ``"shard:sn"`` and ``"shard:sn:index"``.  Anything else
        — wrong part count, empty or non-decimal parts, a negative
        shard/index, a serial number below 1 — raises
        :class:`ShardRoutingError` (which existence checks against the
        actual shard table then refine further).
        """
        if not isinstance(text, str):
            raise ShardRoutingError(
                f"a packed locator is a string, got {type(text).__name__}")
        parts = text.split(":")
        if len(parts) not in (2, 3):
            raise ShardRoutingError(f"malformed record locator: {text!r}")
        values = []
        for part in parts:
            # isascii+isdigit admits only ASCII decimal digits: signs,
            # whitespace, empty parts ("1::0", "2:"), and Unicode digit
            # lookalikes (which int() would happily parse) all fail here.
            if not (part.isascii() and part.isdigit()):
                raise ShardRoutingError(
                    f"malformed record locator: {text!r} "
                    f"(component {part!r} is not a decimal number)")
            values.append(int(part))
        shard_id, sn = values[0], values[1]
        index = values[2] if len(values) == 3 else 0
        if sn < 1:
            raise ShardRoutingError(
                f"malformed record locator: {text!r} "
                "(serial numbers start at 1)")
        return cls(shard_id=shard_id, sn=sn, record_index=index)


#: Locator value accepted anywhere a front-end routes by record: a
#: :class:`RecordLocator`, a receipt carrying a ``.locator``, a packed
#: string (``"2:41:0"``), or a raw ``(shard_id, sn)`` /
#: ``(shard_id, sn, record_index)`` tuple.
LocatorLike = Union[RecordLocator, str, Tuple[int, int], Tuple[int, int, int]]


def resolve_locator(locator) -> RecordLocator:
    """Normalize any :data:`LocatorLike` to a :class:`RecordLocator`.

    Receipts are accepted structurally (anything exposing a ``.locator``
    that is a :class:`RecordLocator`), so the sharded receipt type never
    needs importing here.  Unroutable values raise
    :class:`ShardRoutingError`.
    """
    if isinstance(locator, RecordLocator):
        return locator
    inner = getattr(locator, "locator", None)
    if isinstance(inner, RecordLocator):
        return inner
    if isinstance(locator, str):
        return RecordLocator.unpack(locator)
    if isinstance(locator, tuple) and len(locator) in (2, 3):
        return RecordLocator(*locator)
    raise ShardRoutingError(
        f"cannot route by {locator!r}; pass a RecordLocator, a receipt, "
        "a (shard_id, sn) tuple, or a packed string")
