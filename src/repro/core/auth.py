"""Pluggable authentication schemes over the record catalog (DESIGN §12).

The paper's central performance claim pits O(1) sealed windows against
O(log n) Merkle trees; PAPERS.md adds a third contender, the dynamic
distributed RSA accumulator.  This module extracts the surface all three
share — *how a store proves the status of a serial number to a
verifying client* — so :class:`~repro.core.worm.StrongWormStore`
programs against one interface and the scheme is chosen purely by the
frozen ``StoreConfig.auth_scheme`` field:

* ``"windows"`` — :class:`WindowScheme`, the paper's signed
  ``[SN_base, SN_current]`` window with deletion proofs and compacted
  deletion windows (§4.2.1);
* ``"merkle"`` — :class:`MerkleScheme`, an SCPU-signed Merkle tree over
  the catalog (the classical baseline, promoted from
  the since-retired ``repro.baselines.merkle_worm`` to a
  first-class backend);
* ``"accumulator"`` — :class:`AccumulatorScheme`, a trapdoor-assisted
  RSA accumulator: the SCPU holds the trapdoor for O(1) updates and
  witness minting, an **untrusted** :class:`~repro.crypto.accumulator.
  WitnessDirectory` caches witnesses and answers membership queries.

What stays *shared* across schemes is deliberate: the VRDT catalog,
metasig/datasig witnessing, retention, deferred strengthening, and the
per-record deletion proof ``S_d(SN)``.  A scheme owns only the
authenticated set-membership structure — which is why the same
write/read/expire trace yields the identical catalog through any scheme
(the cross-scheme equivalence suite locks this).

Every scheme instance is *main-CPU code* and holds no trust; all
assurances flow from SCPU-signed constructs (`Purpose.SN_CURRENT`,
`Purpose.MERKLE_ROOT`, `Purpose.ACCUMULATOR_VALUE`) that clients verify.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar, Dict, Optional, Tuple, Type

from repro.core.client import VerifiedRead, WormClient
from repro.core.errors import (
    UnknownAlgorithmError,
    VerificationError,
    WormError,
)
from repro.core.proofs import (
    ActiveProof,
    BaseBoundProof,
    DeletionProofResponse,
    DeletionWindowProof,
    NeverAllocatedProof,
    ReadResult,
)
from repro.core.windows import WindowManager
from repro.crypto.accumulator import (
    hash_to_prime,
    verify_membership,
    WitnessDirectory,
)
from repro.crypto.envelope import Purpose, SignedEnvelope
from repro.crypto.hashing import ChainedHasher
from repro.crypto.merkle import MerkleProof, MerkleTree

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (worm -> auth)
    from repro.core.worm import StrongWormStore
    from repro.storage.vrd import VirtualRecordDescriptor

__all__ = [
    "AuthenticationScheme",
    "WindowScheme",
    "MerkleScheme",
    "AccumulatorScheme",
    "MerkleMembershipProof",
    "MerkleFrontierProof",
    "AccumulatorMembershipProof",
    "AccumulatorFrontierProof",
    "register_scheme",
    "resolve_scheme",
    "create_scheme",
    "available_schemes",
]


def _signed_size(signed: SignedEnvelope) -> int:
    """Serialized size of one signed envelope (statement + signature)."""
    return len(signed.envelope.canonical_bytes()) + len(signed.signature)


# ---------------------------------------------------------------------------
# Scheme-specific proof objects.  The five window-scheme proofs live in
# repro.core.proofs (they are the paper's case analysis); these carry the
# ``scheme`` discriminator WormClient uses to dispatch back into the
# registry for verification.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MerkleMembershipProof:
    """Signed root + authentication path for an active record."""

    scheme: ClassVar[str] = "merkle"
    kind: ClassVar[str] = "merkle-membership"
    signed_root: SignedEnvelope
    leaf: bytes
    path: MerkleProof


@dataclass(frozen=True)
class MerkleFrontierProof:
    """Fresh signed root whose SN frontier is below the requested SN."""

    scheme: ClassVar[str] = "merkle"
    kind: ClassVar[str] = "merkle-frontier"
    signed_root: SignedEnvelope


@dataclass(frozen=True)
class AccumulatorMembershipProof:
    """Signed accumulator value + membership witness for an active record.

    The client recomputes the prime representative from the requested SN
    (never trusting a server-supplied prime), so a witness cannot be
    spliced onto a different record.
    """

    scheme: ClassVar[str] = "accumulator"
    kind: ClassVar[str] = "acc-membership"
    signed_value: SignedEnvelope
    witness: int


@dataclass(frozen=True)
class AccumulatorFrontierProof:
    """Fresh signed accumulator statement backing a never-allocated denial."""

    scheme: ClassVar[str] = "accumulator"
    kind: ClassVar[str] = "acc-frontier"
    signed_value: SignedEnvelope


# ---------------------------------------------------------------------------
# The interface
# ---------------------------------------------------------------------------


class AuthenticationScheme(abc.ABC):
    """How one store authenticates set membership of its serial numbers.

    One instance per store, constructed by the registry from
    ``StoreConfig.auth_scheme``.  Implementations are main-CPU
    orchestration: every trusted operation goes through the store's
    retry-gated SCPU view, every device cost lands on an
    :class:`~repro.hardware.device.OpMeter`.

    The contract (store side):

    * :meth:`bootstrap` — publish initial signed state for an empty store;
    * :meth:`on_write` — seal/append a freshly inserted VRD;
    * :meth:`on_attr_change` — re-sync after an authorized attribute
      change (litigation hold/release) for schemes whose structure binds
      the attributes;
    * :meth:`witness_deletion` — record an expiry in the structure and
      return the ``S_d(SN)`` deletion proof to store in the VRDT;
    * :meth:`classify` / :meth:`prove` — the read path: which proof case
      applies, and the proof object for it;
    * :meth:`maintenance` — idle-period work (freshness refresh,
      compaction, base advancement);
    * :meth:`proof_size_bytes` / :meth:`state_size_bytes` — the
      serialized-size accounting the ablation benchmarks compare.

    And the client side: :meth:`client_verify` is the registry-dispatched
    verifier :class:`~repro.core.client.WormClient` calls for proof
    objects carrying this scheme's discriminator.
    """

    #: Registry key; subclasses set this.
    name: ClassVar[str] = ""

    def __init__(self, store: "StrongWormStore") -> None:
        self.store = store

    # -- store-side lifecycle -------------------------------------------------

    @abc.abstractmethod
    def bootstrap(self) -> None:
        """Publish initial signed state (an empty store must still deny)."""

    @abc.abstractmethod
    def on_write(self, vrd: "VirtualRecordDescriptor") -> None:
        """Seal/append a newly inserted active VRD."""

    def on_attr_change(self, vrd: "VirtualRecordDescriptor") -> None:
        """Re-sync after lit_hold/lit_release re-signed the attributes.

        Default no-op: windows and the accumulator bind only the SN (the
        metasig binds attributes); the Merkle leaf binds attr bytes and
        must be rewritten.
        """

    @abc.abstractmethod
    def witness_deletion(self, sn: int) -> SignedEnvelope:
        """Record an expiry; returns ``S_d(SN)`` for the VRDT.

        All schemes store the paper's deletion proof — it is what keeps
        the catalog identical across schemes — but each additionally
        updates its own structure (tombstone leaf, accumulator removal).
        """

    # -- read path ------------------------------------------------------------

    @abc.abstractmethod
    def classify(self, sn: int) -> str:
        """The proof case for *sn* now (``"missing"`` = VRDT corruption)."""

    @abc.abstractmethod
    def prove(self, sn: int, case: str) -> Tuple[str, object]:
        """Build ``(status, proof)`` for a classified read.

        *status* is the :class:`~repro.core.proofs.ReadResult` status
        (``"active"``, ``"deleted"``, ``"never-allocated"``); the store
        attaches payloads for active reads.
        """

    # -- idle-period maintenance ---------------------------------------------

    @abc.abstractmethod
    def maintenance(self, compact: bool = True) -> Dict[str, int]:
        """One idle slice; returns at least windows_compacted/base_advanced."""

    # -- size accounting ------------------------------------------------------

    @abc.abstractmethod
    def proof_size_bytes(self, proof: object) -> int:
        """Serialized size of one proof object this scheme emitted."""

    @abc.abstractmethod
    def state_size_bytes(self) -> int:
        """Resident size of the scheme's authentication state.

        Only the *scheme-owned* structure counts (signed bounds, tree
        nodes, accumulator value + witness cache) — the shared VRDT and
        deletion proofs are common to all schemes.
        """

    # -- client side ----------------------------------------------------------

    @classmethod
    def client_verify(cls, client: WormClient, result: ReadResult,
                      requested_sn: int) -> VerifiedRead:
        """Verify one of this scheme's proof objects on the client.

        Dispatched from :meth:`WormClient.verify_read` via the proof's
        ``scheme`` discriminator.  The window scheme never lands here —
        its five proofs are the client's native case analysis.
        """
        raise VerificationError(
            f"unrecognized proof object: {result.proof!r}")


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_SCHEMES: Dict[str, Type[AuthenticationScheme]] = {}


def register_scheme(cls: Type[AuthenticationScheme]
                    ) -> Type[AuthenticationScheme]:
    """Class decorator: make *cls* selectable via ``StoreConfig.auth_scheme``."""
    if not cls.name:
        raise WormError(f"{cls.__name__} must define a scheme name")
    _SCHEMES[cls.name] = cls
    return cls


def resolve_scheme(name: str) -> Type[AuthenticationScheme]:
    """Look up a registered scheme class; unknown names are config errors."""
    try:
        return _SCHEMES[name]
    except KeyError:
        raise UnknownAlgorithmError(
            f"unknown authentication scheme {name!r}; registered schemes: "
            f"{', '.join(sorted(_SCHEMES))}") from None


def create_scheme(name: str, store: "StrongWormStore") -> AuthenticationScheme:
    """Instantiate the scheme *store* is configured for."""
    return resolve_scheme(name)(store)


def available_schemes() -> Tuple[str, ...]:
    return tuple(sorted(_SCHEMES))


# ---------------------------------------------------------------------------
# 1. The paper's sealed windows
# ---------------------------------------------------------------------------


@register_scheme
class WindowScheme(AuthenticationScheme):
    """O(1) window authentication (§4.2.1) behind the scheme interface.

    Thin orchestration over :class:`~repro.core.windows.WindowManager`;
    with this scheme selected, ``store.windows`` remains the live
    manager, preserving the pre-scheme surface tools and tests poke.
    """

    name: ClassVar[str] = "windows"

    def __init__(self, store: "StrongWormStore") -> None:
        super().__init__(store)
        self.windows = WindowManager(
            store.scpu_rt, store.vrdt,
            refresh_interval=store.config.window_refresh_interval)

    def bootstrap(self) -> None:
        self.windows.refresh_current(force=True)
        self.windows.refresh_base(force=True)

    def on_write(self, vrd: "VirtualRecordDescriptor") -> None:
        # Not a re-sign per write: the bound may lag the frontier by one
        # refresh interval — the O(1)-amortized design the paper trades
        # against Merkle's O(log n)-per-update.
        self.windows.refresh_current()

    def witness_deletion(self, sn: int) -> SignedEnvelope:
        return self.store.scpu_rt.make_deletion_proof(sn)

    def classify(self, sn: int) -> str:
        return self.windows.classify(sn)

    def prove(self, sn: int, case: str) -> Tuple[str, object]:
        store = self.store
        if case == "active":
            return "active", ActiveProof(sn_current=store._stored_sn_current())
        if case == "deletion-proof":
            proof_env = store.vrdt.get_deletion_proof(sn)
            assert proof_env is not None
            return "deleted", DeletionProofResponse(proof=proof_env)
        if case == "below-base":
            return "deleted", BaseBoundProof(sn_base=store._stored_sn_base())
        if case == "deletion-window":
            window = store.vrdt.window_covering(sn)
            assert window is not None
            return "deleted", DeletionWindowProof(lower=window.lower,
                                                  upper=window.upper)
        if case == "never-allocated":
            return "never-allocated", NeverAllocatedProof(
                sn_current=store._stored_sn_current())
        raise WormError(f"window scheme cannot prove case {case!r}")

    def maintenance(self, compact: bool = True) -> Dict[str, int]:
        self.windows.refresh_current()
        self.windows.refresh_base()
        summary = {"windows_compacted": 0, "base_advanced": 0}
        if compact:
            summary["windows_compacted"] = self.windows.compact_expired_runs()
            if self.windows.try_advance_base():
                summary["base_advanced"] = 1
        return summary

    def proof_size_bytes(self, proof: object) -> int:
        if isinstance(proof, (ActiveProof, NeverAllocatedProof)):
            return _signed_size(proof.sn_current)
        if isinstance(proof, DeletionProofResponse):
            return _signed_size(proof.proof)
        if isinstance(proof, BaseBoundProof):
            return _signed_size(proof.sn_base)
        if isinstance(proof, DeletionWindowProof):
            return _signed_size(proof.lower) + _signed_size(proof.upper)
        raise WormError(f"not a window-scheme proof: {proof!r}")

    def state_size_bytes(self) -> int:
        vrdt = self.store.vrdt
        total = 0
        if vrdt.sn_current_envelope is not None:
            total += _signed_size(vrdt.sn_current_envelope)
        if vrdt.sn_base_envelope is not None:
            total += _signed_size(vrdt.sn_base_envelope)
        for window in vrdt.deletion_windows:
            total += _signed_size(window.lower) + _signed_size(window.upper)
        return total


# ---------------------------------------------------------------------------
# 2. The Merkle baseline, promoted to a first-class backend
# ---------------------------------------------------------------------------


def _merkle_leaf(sn: int, attr_bytes: bytes, data_hash: bytes) -> bytes:
    """Leaf binding for an active record: SN, liveness tag, attr, data."""
    return sn.to_bytes(8, "big") + b"A" + attr_bytes + data_hash


def _merkle_tombstone(sn: int) -> bytes:
    """Leaf binding for a deleted record (the slot stays, the data goes)."""
    return sn.to_bytes(8, "big") + b"D"


@register_scheme
class MerkleScheme(AuthenticationScheme):
    """O(log n)-per-update authenticated tree over the catalog.

    One leaf per issued SN (active binding or tombstone); the SCPU
    re-verifies the touched authentication path and signs the new root
    on every update (:meth:`~repro.hardware.scpu.SecureCoprocessor.
    sign_merkle_root` charges the DMA + SHA + signature).  The signed
    root carries the SN frontier, so one statement backs both membership
    proofs and never-allocated denials; clients enforce the freshness
    window on it exactly as on ``S_s(SN_current)``.
    """

    name: ClassVar[str] = "merkle"

    def __init__(self, store: "StrongWormStore") -> None:
        super().__init__(store)
        self.tree = MerkleTree()
        self._index: Dict[int, int] = {}  # sn -> leaf index
        self.signed_root: Optional[SignedEnvelope] = None

    # -- internals ------------------------------------------------------------

    def _reseal(self) -> None:
        self.signed_root = self.store.scpu_rt.sign_merkle_root(
            self.tree.root(), self.tree.size, max(1, self.tree.height))

    def _signed_root_or_die(self) -> SignedEnvelope:
        if self.signed_root is None:  # pragma: no cover - set in bootstrap
            raise WormError("no signed Merkle root available")
        return self.signed_root

    def _frontier(self) -> int:
        return int(self._signed_root_or_die().field("sn_frontier"))

    # -- lifecycle ------------------------------------------------------------

    def bootstrap(self) -> None:
        self._reseal()

    def on_write(self, vrd: "VirtualRecordDescriptor") -> None:
        # SNs are issued consecutively, so the tree stays dense; tombstone
        # placeholders guard the (unexpected) gap case.
        while self.tree.size < vrd.sn - 1:
            missing_sn = self.tree.size + 1
            self._index[missing_sn] = self.tree.append(
                _merkle_tombstone(missing_sn))
        leaf = _merkle_leaf(vrd.sn, vrd.attr.canonical_bytes(), vrd.data_hash)
        self._index[vrd.sn] = self.tree.append(leaf)
        self._reseal()

    def on_attr_change(self, vrd: "VirtualRecordDescriptor") -> None:
        leaf = _merkle_leaf(vrd.sn, vrd.attr.canonical_bytes(), vrd.data_hash)
        self.tree.update(self._index[vrd.sn], leaf)
        self._reseal()

    def witness_deletion(self, sn: int) -> SignedEnvelope:
        proof = self.store.scpu_rt.make_deletion_proof(sn)
        self.tree.update(self._index[sn], _merkle_tombstone(sn))
        self._reseal()
        return proof

    # -- read path ------------------------------------------------------------

    def classify(self, sn: int) -> str:
        vrdt = self.store.vrdt
        if vrdt.is_active(sn):
            return "active"
        if vrdt.get_deletion_proof(sn) is not None:
            return "deletion-proof"
        if sn > self._frontier():
            return "never-allocated"
        return "missing"

    def prove(self, sn: int, case: str) -> Tuple[str, object]:
        if case == "active":
            index = self._index[sn]
            vrd = self.store.vrdt.get_active(sn)
            assert vrd is not None
            leaf = _merkle_leaf(sn, vrd.attr.canonical_bytes(), vrd.data_hash)
            return "active", MerkleMembershipProof(
                signed_root=self._signed_root_or_die(),
                leaf=leaf, path=self.tree.prove(index))
        if case == "deletion-proof":
            proof_env = self.store.vrdt.get_deletion_proof(sn)
            assert proof_env is not None
            return "deleted", DeletionProofResponse(proof=proof_env)
        if case == "never-allocated":
            return "never-allocated", MerkleFrontierProof(
                signed_root=self._signed_root_or_die())
        raise WormError(f"merkle scheme cannot prove case {case!r}")

    def maintenance(self, compact: bool = True) -> Dict[str, int]:
        signed = self._signed_root_or_die()
        interval = self.store.config.window_refresh_interval
        if self.store.now - signed.timestamp >= interval:
            self._reseal()
        return {"windows_compacted": 0, "base_advanced": 0}

    # -- size accounting ------------------------------------------------------

    def proof_size_bytes(self, proof: object) -> int:
        if isinstance(proof, MerkleMembershipProof):
            return (_signed_size(proof.signed_root) + len(proof.leaf)
                    + 33 * len(proof.path.path))  # 32-byte sibling + side
        if isinstance(proof, MerkleFrontierProof):
            return _signed_size(proof.signed_root)
        if isinstance(proof, DeletionProofResponse):
            return _signed_size(proof.proof)
        raise WormError(f"not a merkle-scheme proof: {proof!r}")

    def state_size_bytes(self) -> int:
        nodes = max(0, 2 * self.tree.size - 1)
        signed = 0 if self.signed_root is None else _signed_size(self.signed_root)
        return 32 * nodes + signed

    # -- client side ----------------------------------------------------------

    @classmethod
    def client_verify(cls, client: WormClient, result: ReadResult,
                      requested_sn: int) -> VerifiedRead:
        proof = result.proof
        if isinstance(proof, MerkleMembershipProof):
            if result.status != "active" or result.vrd is None:
                raise VerificationError("membership proof without an active record")
            client._check_envelope(proof.signed_root, Purpose.MERKLE_ROOT,
                                   roles=("s",))
            client._check_fresh(proof.signed_root)
            hasher = ChainedHasher()
            for payload in result.records:
                hasher.update(payload)
            expected_leaf = _merkle_leaf(
                requested_sn, result.vrd.attr.canonical_bytes(),
                hasher.digest())
            if proof.leaf != expected_leaf:
                raise VerificationError(
                    "Merkle leaf does not bind the returned record")
            root = bytes(proof.signed_root.field("root"))
            if not MerkleTree.verify_static(proof.leaf, proof.path, root):
                raise VerificationError(
                    "Merkle path does not reach the signed root")
            client.verify_vrd(result.vrd, result.records)
            weak = (result.vrd.metasig.scheme == "hmac"
                    or client._trusted.get(result.vrd.metasig.key_fingerprint,
                                           (None, ""))[1] == "burst")
            return VerifiedRead(sn=requested_sn, status="active",
                                proof_kind=MerkleMembershipProof.kind,
                                data=result.data, weakly_signed=weak)
        if isinstance(proof, MerkleFrontierProof):
            client._check_envelope(proof.signed_root, Purpose.MERKLE_ROOT,
                                   roles=("s",))
            client._check_fresh(proof.signed_root)
            frontier = int(proof.signed_root.field("sn_frontier"))
            if requested_sn <= frontier:
                raise VerificationError(
                    "store claims never-allocated for an SN at or below the "
                    "signed frontier (record hiding)")
            return VerifiedRead(sn=requested_sn, status="never-allocated",
                                proof_kind=MerkleFrontierProof.kind)
        raise VerificationError(f"unrecognized proof object: {proof!r}")


# ---------------------------------------------------------------------------
# 3. The trapdoor-assisted RSA accumulator
# ---------------------------------------------------------------------------


@register_scheme
class AccumulatorScheme(AuthenticationScheme):
    """Dynamic RSA accumulator with the trapdoor inside the SCPU.

    Per write the SCPU performs O(1) work — accumulate the SN's prime,
    sign the new value, mint the witness via the trapdoor — independent
    of store size (flat like windows, but with a per-update signature
    rather than an amortized one).  The untrusted
    :class:`~repro.crypto.accumulator.WitnessDirectory` keeps every
    cached witness current host-side and answers the read path, so
    membership queries never touch the card.  Expiry removes the SN from
    the accumulated set (O(1) trapdoor exponentiation) on top of the
    shared ``S_d(SN)`` deletion proof.
    """

    name: ClassVar[str] = "accumulator"

    _LABEL = "active"

    def __init__(self, store: "StrongWormStore") -> None:
        super().__init__(store)
        self.signed_value: Optional[SignedEnvelope] = None
        self.directory: Optional[WitnessDirectory] = None
        self._dir_modexp_seconds = 0.0

    # -- internals ------------------------------------------------------------

    def _publish(self) -> SignedEnvelope:
        self.signed_value = self.store.scpu_rt.accumulator_sign_value(
            self._LABEL)
        return self.signed_value

    def _signed_value_or_die(self) -> SignedEnvelope:
        if self.signed_value is None:  # pragma: no cover - set in bootstrap
            raise WormError("no signed accumulator value available")
        return self.signed_value

    def _frontier(self) -> int:
        return int(self._signed_value_or_die().field("sn_frontier"))

    def _directory_or_die(self) -> WitnessDirectory:
        if self.directory is None:  # pragma: no cover - set in bootstrap
            raise WormError("witness directory not provisioned")
        return self.directory

    def _charge_directory(self, op: str, modexps: int) -> None:
        self.store.host.meter.charge(op, modexps * self._dir_modexp_seconds)

    # -- lifecycle ------------------------------------------------------------

    def bootstrap(self) -> None:
        store = self.store
        store.scpu_rt.accumulator_bootstrap(labels=(self._LABEL,))
        signed = self._publish()
        modulus = int.from_bytes(bytes(signed.field("modulus")), "big")
        self._dir_modexp_seconds = store.scpu.profile.rsa_verify_seconds(
            modulus.bit_length())
        self.directory = WitnessDirectory(modulus,
                                          charge=self._charge_directory)
        self.directory.value = int.from_bytes(bytes(signed.field("value")),
                                              "big")

    def on_write(self, vrd: "VirtualRecordDescriptor") -> None:
        rt = self.store.scpu_rt
        prime = rt.accumulator_add(self._LABEL, vrd.sn)
        signed = self._publish()
        directory = self._directory_or_die()
        directory.observe_add(
            prime, int.from_bytes(bytes(signed.field("value")), "big"))
        witness = rt.accumulator_witness(self._LABEL, vrd.sn)
        directory.publish(vrd.sn, prime, witness)

    def witness_deletion(self, sn: int) -> SignedEnvelope:
        rt = self.store.scpu_rt
        proof = rt.make_deletion_proof(sn)
        prime = rt.accumulator_remove(self._LABEL, sn)
        signed = self._publish()
        self._directory_or_die().observe_remove(
            prime, int.from_bytes(bytes(signed.field("value")), "big"))
        return proof

    # -- read path ------------------------------------------------------------

    def classify(self, sn: int) -> str:
        vrdt = self.store.vrdt
        if vrdt.is_active(sn):
            return "active"
        if vrdt.get_deletion_proof(sn) is not None:
            return "deletion-proof"
        if sn > self._frontier():
            return "never-allocated"
        return "missing"

    def prove(self, sn: int, case: str) -> Tuple[str, object]:
        if case == "active":
            witness = self._directory_or_die().witness_for(sn)
            if witness is None:
                raise WormError(
                    f"witness directory has no witness for active SN {sn}")
            return "active", AccumulatorMembershipProof(
                signed_value=self._signed_value_or_die(), witness=witness)
        if case == "deletion-proof":
            proof_env = self.store.vrdt.get_deletion_proof(sn)
            assert proof_env is not None
            return "deleted", DeletionProofResponse(proof=proof_env)
        if case == "never-allocated":
            return "never-allocated", AccumulatorFrontierProof(
                signed_value=self._signed_value_or_die())
        raise WormError(f"accumulator scheme cannot prove case {case!r}")

    def maintenance(self, compact: bool = True) -> Dict[str, int]:
        signed = self._signed_value_or_die()
        interval = self.store.config.window_refresh_interval
        if self.store.now - signed.timestamp >= interval:
            self._publish()
        return {"windows_compacted": 0, "base_advanced": 0}

    # -- size accounting ------------------------------------------------------

    def _witness_width(self) -> int:
        return (self._directory_or_die().modulus.bit_length() + 7) // 8

    def proof_size_bytes(self, proof: object) -> int:
        if isinstance(proof, AccumulatorMembershipProof):
            return _signed_size(proof.signed_value) + self._witness_width()
        if isinstance(proof, AccumulatorFrontierProof):
            return _signed_size(proof.signed_value)
        if isinstance(proof, DeletionProofResponse):
            return _signed_size(proof.proof)
        raise WormError(f"not an accumulator-scheme proof: {proof!r}")

    def state_size_bytes(self) -> int:
        signed = (0 if self.signed_value is None
                  else _signed_size(self.signed_value))
        directory = (0 if self.directory is None
                     else self.directory.state_size_bytes())
        return signed + directory

    # -- client side ----------------------------------------------------------

    @classmethod
    def client_verify(cls, client: WormClient, result: ReadResult,
                      requested_sn: int) -> VerifiedRead:
        proof = result.proof
        if isinstance(proof, AccumulatorMembershipProof):
            if result.status != "active" or result.vrd is None:
                raise VerificationError("membership proof without an active record")
            signed = proof.signed_value
            client._check_envelope(signed, Purpose.ACCUMULATOR_VALUE,
                                   roles=("s",))
            client._check_fresh(signed)
            modulus = int.from_bytes(bytes(signed.field("modulus")), "big")
            value = int.from_bytes(bytes(signed.field("value")), "big")
            prime = hash_to_prime(requested_sn)
            if not verify_membership(proof.witness, prime, value, modulus):
                raise VerificationError(
                    "accumulator witness does not prove membership of this SN")
            client.verify_vrd(result.vrd, result.records)
            weak = (result.vrd.metasig.scheme == "hmac"
                    or client._trusted.get(result.vrd.metasig.key_fingerprint,
                                           (None, ""))[1] == "burst")
            return VerifiedRead(sn=requested_sn, status="active",
                                proof_kind=AccumulatorMembershipProof.kind,
                                data=result.data, weakly_signed=weak)
        if isinstance(proof, AccumulatorFrontierProof):
            signed = proof.signed_value
            client._check_envelope(signed, Purpose.ACCUMULATOR_VALUE,
                                   roles=("s",))
            client._check_fresh(signed)
            frontier = int(signed.field("sn_frontier"))
            if requested_sn <= frontier:
                raise VerificationError(
                    "store claims never-allocated for an SN at or below the "
                    "signed frontier (record hiding)")
            return VerifiedRead(sn=requested_sn, status="never-allocated",
                                proof_kind=AccumulatorFrontierProof.kind)
        raise VerificationError(f"unrecognized proof object: {proof!r}")
