"""Secure-deletion (shredding) algorithms — §1's Secure Deletion requirement.

"Deleted records should not be recoverable even with unrestricted access
to the underlying storage medium; moreover, deletion should leave no hints
of their existence at the storage server."  When the Retention Monitor
deletes a record, the SCPU "first invokes the associated storage
media-related data shredding algorithms" (§4.2.2); the algorithm is named
per-record in the VRD ``attr`` field (Table 1).

Each algorithm overwrites the record's blocks one or more times with a
defined pattern sequence and then removes the key from the block store,
so no trace of the payload (or its existence) remains in untrusted
storage.  The pass count feeds the disk cost model — multi-pass shredding
is the dominant deletion cost on rotating media.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.core.errors import UnknownAlgorithmError
from repro.storage.block_store import BlockStore

__all__ = ["ShredResult", "Shredder", "SHREDDING_ALGORITHMS", "shred"]


@dataclass(frozen=True)
class ShredResult:
    """Outcome of shredding one record: passes performed and bytes written."""

    algorithm: str
    passes: int
    bytes_overwritten: int


def _pattern_pass(pattern: bytes, length: int) -> bytes:
    """A full-length overwrite buffer built by repeating *pattern*."""
    repeats = length // len(pattern) + 1
    return (pattern * repeats)[:length]


@dataclass(frozen=True)
class Shredder:
    """One named shredding algorithm: an ordered list of pass generators.

    Each generator maps a record length to the bytes written in that pass;
    ``None`` entries produce fresh randomness per pass.
    """

    name: str
    passes: Tuple[object, ...]  # bytes patterns, or None for random

    def run(self, store: BlockStore, key: str, length: int) -> ShredResult:
        """Overwrite the record *passes* times, then delete the key."""
        written = 0
        for pattern in self.passes:
            if pattern is None:
                buffer = secrets.token_bytes(length) if length else b""
            else:
                buffer = _pattern_pass(pattern, length)
            store.overwrite(key, buffer)
            written += length
        store.delete(key)
        return ShredResult(algorithm=self.name, passes=len(self.passes),
                           bytes_overwritten=written)


#: The shredding algorithms selectable in record attributes.
SHREDDING_ALGORITHMS: Dict[str, Shredder] = {
    shredder.name: shredder
    for shredder in (
        # Single zero pass — NIST 800-88 "clear" for modern drives.
        Shredder(name="zero-fill", passes=(b"\x00",)),
        # DoD 5220.22-M: character, complement, random.
        Shredder(name="dod-5220-3pass", passes=(b"\x55", b"\xaa", None)),
        # Seven random passes — intelligence-grade paranoia.
        Shredder(name="random-7pass", passes=(None,) * 7),
        # No overwrite at all: delete the key only (for data already
        # encrypted at rest where key destruction is the real shredding).
        Shredder(name="unlink-only", passes=()),
    )
}


def shred(store: BlockStore, key: str, length: int, algorithm: str) -> ShredResult:
    """Shred one record with the named algorithm.

    Raises :class:`UnknownAlgorithmError` (a ``WormError`` that is also a
    ``KeyError``) for unknown algorithm names — a store must never
    silently fall back to a weaker shred than the record's policy
    mandates.
    """
    try:
        shredder = SHREDDING_ALGORITHMS[algorithm]
    except KeyError:
        raise UnknownAlgorithmError(
            f"unknown shredding algorithm: {algorithm!r}") from None
    return shredder.run(store, key, length)
