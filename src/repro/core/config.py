"""Consolidated store configuration.

:class:`StrongWormStore` historically grew nine keyword knobs — device
substitutions, policy table, regulator key, and three tuning scalars.
:class:`StoreConfig` consolidates them into one frozen, reusable value
object that both :class:`~repro.core.worm.StrongWormStore` and the
sharded front-end (:class:`~repro.core.sharded.ShardedWormStore`) accept
as ``config=...``; the legacy per-knob keyword arguments keep working.

A config is a *template*: the sharded front-end instantiates one
:class:`~repro.core.worm.StrongWormStore` per shard from the same
config, so the device fields (``scpu``, ``block_store``, ``host``,
``disk``) must be left ``None`` there — each shard provisions its own.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Optional

__all__ = ["StoreConfig"]


@dataclass(frozen=True)
class StoreConfig:
    """Every construction-time knob of a Strong WORM store, in one place.

    Device/object knobs (default ``None`` = provision a fresh default):

    * ``scpu`` — the :class:`~repro.hardware.device.ScpuLike` trust
      anchor (a single card or an :class:`~repro.hardware.pool.ScpuPool`);
    * ``block_store`` — untrusted payload storage;
    * ``host`` / ``disk`` — untrusted cost models;
    * ``policies`` — the :class:`~repro.core.policy.PolicyRegistry`;
    * ``regulator_public_key`` — litigation authority for lit_hold.

    Tuning scalars (paper defaults):

    * ``auth_scheme`` — which registered
      :class:`~repro.core.auth.AuthenticationScheme` authenticates the
      record catalog: ``"windows"`` (the paper's O(1) sealed windows,
      default), ``"merkle"`` (O(log n) authenticated tree), or
      ``"accumulator"`` (trapdoor-assisted RSA accumulator).  Unknown
      names raise :class:`~repro.core.errors.UnknownAlgorithmError` at
      store construction;
    * ``window_refresh_interval`` — seconds between refreshes of the
      scheme's freshness-bearing statement (S_s(SN_current), the signed
      Merkle root, or the signed accumulator value);
    * ``vexp_capacity`` — SCPU-resident expiration-list slots (§4.2.2);
    * ``strengthen_safety_factor`` — fraction of a weak construct's
      security lifetime after which it must be strengthened (§4.3).

    Robustness knobs (fault handling — see ``repro.faults``):

    * ``retry_policy`` — a :class:`~repro.core.retry.RetryPolicy` for
      transient SCPU/storage faults at the store's trust-boundary call
      sites (``None`` = the default policy; pass
      ``RetryPolicy(max_attempts=1)`` to disable retrying);
    * ``breaker_failure_threshold`` — consecutive transient commit
      failures before a shard's circuit breaker opens;
    * ``breaker_cooldown_seconds`` — how long an open breaker routes
      writes away before probing the shard again.

    Sharded front-end knobs (ignored by a bare ``StrongWormStore``):

    * ``shard_count`` — number of shards :meth:`ShardedWormStore.build`
      provisions when not given explicit stores;
    * ``group_commit_size`` — pending records per shard that trigger an
      automatic group-commit flush (1 disables auto-batching);
    * ``journal`` — an :class:`~repro.storage.journal.IntentJournal`
      making submitted-but-unflushed records crash-durable (``None`` =
      no journal; the front-end replays it on construction).

    Observability (see ``repro.obs``):

    * ``observe`` — a :class:`~repro.obs.bus.TelemetryBus` every layer
      of the store reports into (``None`` = telemetry off).  Unlike the
      device fields, the bus intentionally survives :meth:`per_shard`:
      all shards of a sharded store share one bus, which is what makes
      the snapshot a store-wide aggregate.
    """

    scpu: Optional[Any] = None
    block_store: Optional[Any] = None
    host: Optional[Any] = None
    disk: Optional[Any] = None
    policies: Optional[Any] = None
    regulator_public_key: Optional[Any] = None
    auth_scheme: str = "windows"
    window_refresh_interval: float = 120.0
    vexp_capacity: int = 65536
    strengthen_safety_factor: float = 0.5
    retry_policy: Optional[Any] = None
    breaker_failure_threshold: int = 3
    breaker_cooldown_seconds: float = 30.0
    shard_count: int = 1
    group_commit_size: int = 8
    journal: Optional[Any] = None
    observe: Optional[Any] = None

    def replace(self, **changes: Any) -> "StoreConfig":
        """A copy with *changes* applied (frozen-dataclass update)."""
        return dataclasses.replace(self, **changes)

    def with_overrides(self, **overrides: Any) -> "StoreConfig":
        """A copy with the non-``None`` *overrides* applied.

        This is the legacy-kwarg merge rule: an explicitly passed keyword
        beats the config field, an omitted one (``None``) leaves the
        config untouched.  Scalar knobs use a ``None`` sentinel at the
        call sites for exactly this reason.
        """
        changes = {k: v for k, v in overrides.items() if v is not None}
        return dataclasses.replace(self, **changes) if changes else self

    def per_shard(self) -> "StoreConfig":
        """The template a sharded front-end hands each shard.

        Shared mutable devices must not leak across shards: every shard
        gets its own SCPU/blocks/host/disk, so those fields are reset.
        The intent journal belongs to the front-end (it spans shards),
        so it is reset as well; the retry policy is a value object and
        carries over to every shard.
        """
        return dataclasses.replace(self, scpu=None, block_store=None,
                                   host=None, disk=None, shard_count=1,
                                   journal=None)
