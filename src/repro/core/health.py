"""Failure-domain health tracking: circuit breakers and degraded mode.

Each SCPU card (and therefore each shard of a
:class:`~repro.core.sharded.ShardedWormStore`) is an independent failure
domain.  :class:`CircuitBreaker` tracks one domain through the classic
three transient states plus one terminal state:

* ``closed`` — healthy, writes flow;
* ``open`` — too many consecutive transient failures; writes are routed
  elsewhere until a cooldown elapses;
* ``half-open`` — cooldown elapsed; the next write is a probe (success
  closes the breaker, failure re-opens it);
* ``degraded`` — **terminal**: the card tripped tamper response and
  zeroized.  The paper's fail-safe means there is no way back — the
  domain serves reads forever (proofs are *stored* artifacts, §4.2.2)
  but will never witness another write.

The breaker is untrusted main-CPU bookkeeping, like the routing tables:
losing it costs availability decisions, never integrity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.obs.bus import NULL_BUS, TelemetryBus

__all__ = ["BreakerState", "SiteState", "CircuitBreaker", "HealthSnapshot"]


class BreakerState:
    """Names of the breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"
    DEGRADED = "degraded"


class SiteState:
    """Names of a whole site's lifecycle states.

    Breakers track one *shard*; the site state tracks the whole
    front-end through disaster recovery.  ``ACTIVE`` is the ordinary
    serving state.  ``RECOVERING`` means the site is being rebuilt from
    a replica by :class:`repro.recovery.SiteRecovery`: verifiable reads
    are served as soon as the VERIFY stage completes, while external
    writes are refused (503 + Retry-After at the service layer) until
    the replicated journal has drained and RESUME flips the site back
    to ``ACTIVE``.
    """

    ACTIVE = "active"
    RECOVERING = "recovering"


@dataclass(frozen=True)
class HealthSnapshot:
    """One domain's health at a point in time (for reports)."""

    state: str
    consecutive_failures: int
    transient_failures: int
    permanent: bool
    successes: int
    cooldown_remaining: float

    def as_dict(self) -> Dict[str, Any]:
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "transient_failures": self.transient_failures,
            "permanent": self.permanent,
            "successes": self.successes,
            "cooldown_remaining": self.cooldown_remaining,
        }


class CircuitBreaker:
    """Health latch of one failure domain, driven by virtual time."""

    def __init__(self, failure_threshold: int = 3,
                 cooldown_seconds: float = 30.0,
                 obs: Optional[TelemetryBus] = None,
                 label: str = "") -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_seconds < 0:
            raise ValueError("cooldown_seconds must be non-negative")
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self.obs = obs if obs is not None else NULL_BUS
        self.label = label
        self._consecutive = 0
        self._transient_total = 0
        self._successes = 0
        self._degraded = False
        self._open_until = float("-inf")
        if self.obs.enabled:
            self.obs.declare_counter("breaker.opened")
            self.obs.declare_counter("breaker.closed")
            self.obs.declare_counter("breaker.degraded")

    # -- state ---------------------------------------------------------------

    @property
    def degraded(self) -> bool:
        """True once the domain failed permanently (tamper/zeroization)."""
        return self._degraded

    def state(self, now: float) -> str:
        if self._degraded:
            return BreakerState.DEGRADED
        if self._consecutive >= self.failure_threshold:
            return (BreakerState.HALF_OPEN if now >= self._open_until
                    else BreakerState.OPEN)
        return BreakerState.CLOSED

    def allows_writes(self, now: float) -> bool:
        """Should new work be routed to this domain right now?

        Closed and half-open domains take writes (half-open is the
        probe); open and degraded domains do not.
        """
        return self.state(now) in (BreakerState.CLOSED,
                                   BreakerState.HALF_OPEN)

    # -- transitions ----------------------------------------------------------

    def record_success(self, now: Optional[float] = None) -> None:
        """A commit landed; re-closes a tripped (open/half-open) breaker.

        *now* is optional back-compat sugar: when given, the re-close is
        also emitted as a ``breaker.transition`` telemetry event at that
        virtual time (the counter increments either way).
        """
        self._successes += 1
        was_tripped = (self._consecutive >= self.failure_threshold
                       and not self._degraded)
        previous = (self.state(now) if now is not None
                    else BreakerState.HALF_OPEN)
        self._consecutive = 0
        if was_tripped:
            self.obs.inc("breaker.closed")
            self._transition_event(now, previous, BreakerState.CLOSED)

    def record_transient_failure(self, now: float) -> None:
        if self._degraded:
            return
        self._transient_total += 1
        self._consecutive += 1
        if self._consecutive >= self.failure_threshold:
            self._open_until = now + self.cooldown_seconds
            if self._consecutive == self.failure_threshold:
                # Crossing the threshold is the closed->open transition;
                # further failures while open just extend the cooldown.
                self.obs.inc("breaker.opened")
                self._transition_event(now, BreakerState.CLOSED,
                                       BreakerState.OPEN)

    def record_permanent_failure(self, now: Optional[float] = None) -> None:
        """Tamper trip: the domain is gone for good.

        Idempotent — the paper's zeroization happens once, and several
        code paths may observe it (a failed commit, a failed
        certification), so only the first report counts as the
        transition.
        """
        if self._degraded:
            return
        previous = (BreakerState.OPEN
                    if self._consecutive >= self.failure_threshold
                    else BreakerState.CLOSED)
        self._degraded = True
        self.obs.inc("breaker.degraded")
        self._transition_event(now, previous, BreakerState.DEGRADED)

    def _transition_event(self, now: Optional[float], from_state: str,
                          to_state: str) -> None:
        if now is not None:
            self.obs.event("breaker.transition", now, label=self.label,
                           from_state=from_state, to_state=to_state)

    # -- reporting -----------------------------------------------------------

    def snapshot(self, now: float) -> HealthSnapshot:
        return HealthSnapshot(
            state=self.state(now),
            consecutive_failures=self._consecutive,
            transient_failures=self._transient_total,
            permanent=self._degraded,
            successes=self._successes,
            cooldown_remaining=max(0.0, self._open_until - now)
            if self._consecutive >= self.failure_threshold
            and not self._degraded else 0.0,
        )
