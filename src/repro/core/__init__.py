"""The Strong WORM core: store, client, windows, retention, deferral."""

from repro.core.audit import AuditFinding, AuditReport, StoreAuditor
from repro.core.auth import (
    AccumulatorScheme,
    AuthenticationScheme,
    MerkleScheme,
    WindowScheme,
    available_schemes,
    create_scheme,
    register_scheme,
    resolve_scheme,
)
from repro.core.catalog import RecordCatalog
from repro.core.client import VerifiedRead, WormClient
from repro.core.config import StoreConfig
from repro.core.deferred import (
    HashVerificationQueue,
    PendingStrengthening,
    StrengtheningQueue,
)
from repro.core.dedup import DedupIndex, DepositOutcome
from repro.core.encryption import EncryptedRead, EncryptedWormStore
from repro.core.errors import (
    CrashError,
    CredentialError,
    DegradedError,
    FreshnessError,
    JournalError,
    LitigationHoldError,
    MigrationError,
    MissingRecordError,
    UnknownAlgorithmError,
    UnknownPolicyError,
    RetentionViolationError,
    ScpuUnavailableError,
    SecureMemoryError,
    ShardRoutingError,
    SignatureError,
    StorageUnavailableError,
    TamperedError,
    TransientFaultError,
    UnknownSerialNumberError,
    VerificationError,
    WormError,
)
from repro.core.health import BreakerState, CircuitBreaker, HealthSnapshot
from repro.core.migration import (
    MigrationPackage,
    MigrationReport,
    export_package,
    import_package,
)
from repro.core.policy import (
    STANDARD_POLICIES,
    YEAR_SECONDS,
    PolicyRegistry,
    RegulationPolicy,
)
from repro.core.proofs import (
    ActiveProof,
    BaseBoundProof,
    DeletionProofResponse,
    DeletionWindowProof,
    NeverAllocatedProof,
    ProofKind,
    ReadResult,
)
from repro.core.replication import (
    DivergenceReport,
    MirroredWormStore,
    MirroredWrite,
)
from repro.core.report import ComplianceReport, generate_report
from repro.core.retention import RetentionMonitor, Vexp
from repro.core.retry import (
    RetryExecutor,
    RetryingScpu,
    RetryPolicy,
    RetryStats,
)
from repro.core.locator import LocatorLike, RecordLocator, resolve_locator
from repro.core.sharded import (
    ShardedWormStore,
    ShardedWriteReceipt,
)
from repro.core.shredding import SHREDDING_ALGORITHMS, ShredResult, Shredder, shred
from repro.core.windows import WindowManager
from repro.core.worm import StrongWormStore, WriteReceipt

__all__ = [
    "AuditFinding",
    "AuditReport",
    "StoreAuditor",
    "AccumulatorScheme",
    "AuthenticationScheme",
    "MerkleScheme",
    "WindowScheme",
    "available_schemes",
    "create_scheme",
    "register_scheme",
    "resolve_scheme",
    "RecordCatalog",
    "DedupIndex",
    "DepositOutcome",
    "EncryptedRead",
    "EncryptedWormStore",
    "DivergenceReport",
    "MirroredWormStore",
    "MirroredWrite",
    "ComplianceReport",
    "generate_report",
    "VerifiedRead",
    "WormClient",
    "HashVerificationQueue",
    "PendingStrengthening",
    "StrengtheningQueue",
    "CrashError",
    "CredentialError",
    "DegradedError",
    "FreshnessError",
    "JournalError",
    "LitigationHoldError",
    "MigrationError",
    "MissingRecordError",
    "UnknownAlgorithmError",
    "UnknownPolicyError",
    "RetentionViolationError",
    "ScpuUnavailableError",
    "SecureMemoryError",
    "ShardRoutingError",
    "SignatureError",
    "StorageUnavailableError",
    "TamperedError",
    "TransientFaultError",
    "UnknownSerialNumberError",
    "VerificationError",
    "WormError",
    "BreakerState",
    "CircuitBreaker",
    "HealthSnapshot",
    "RetryExecutor",
    "RetryingScpu",
    "RetryPolicy",
    "RetryStats",
    "StoreConfig",
    "LocatorLike",
    "RecordLocator",
    "resolve_locator",
    "ShardedWormStore",
    "ShardedWriteReceipt",
    "MigrationPackage",
    "MigrationReport",
    "export_package",
    "import_package",
    "STANDARD_POLICIES",
    "YEAR_SECONDS",
    "PolicyRegistry",
    "RegulationPolicy",
    "ActiveProof",
    "BaseBoundProof",
    "DeletionProofResponse",
    "DeletionWindowProof",
    "NeverAllocatedProof",
    "ProofKind",
    "ReadResult",
    "RetentionMonitor",
    "Vexp",
    "SHREDDING_ALGORITHMS",
    "ShredResult",
    "Shredder",
    "shred",
    "WindowManager",
    "StrongWormStore",
    "WriteReceipt",
]
