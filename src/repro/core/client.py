"""Client-side verification — the checking that makes WORM *strong*.

Clients "only need to trust the SCPU" (§4.1): every answer the untrusted
main CPU gives is accompanied by SCPU-signed constructs, and this module
is the verifier a client runs over them.  A read of SN ``v`` is believed
only if one of the five proof cases checks out (see
:mod:`repro.core.proofs`); anything else raises
:class:`~repro.core.errors.VerificationError` — the detection events of
Theorems 1 and 2.

Trust bootstrap: the client holds the regulatory CA's public key and
receives certificates for the SCPU's ``s``, ``d`` and burst keys from the
main CPU (§4.2.1); it verifies each certificate once, then accepts
envelopes under the certified keys for their certified roles.

Freshness: the client "will not accept values older than a few minutes"
for ``S_s(SN_current)`` (§4.2.1, mechanism (ii)) — a stale upper bound is
exactly how an insider hides recently written records.  Short-lived burst
signatures are accepted only inside their §4.3 security lifetime; a
record still weakly signed after its construct's lifetime has lapsed is a
system in violation and is rejected.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.core.errors import FreshnessError, VerificationError
from repro.core.proofs import (
    ActiveProof,
    BaseBoundProof,
    DeletionProofResponse,
    DeletionWindowProof,
    NeverAllocatedProof,
    ProofKind,
    ReadResult,
)
from repro.crypto.envelope import Purpose, SignedEnvelope
from repro.crypto.hashing import ChainedHasher
from repro.crypto.keys import Certificate, CertificateAuthority, security_lifetime
from repro.crypto.rsa import RsaPublicKey
from repro.storage.vrd import VirtualRecordDescriptor

__all__ = ["WormClient", "VerifiedRead"]

#: Tolerated forward clock skew between client and SCPU (seconds).
_CLOCK_SKEW = 60.0

#: Default capacity of the client's verified-signature memo (entries).
_SIG_CACHE_SIZE = 256


@dataclass(frozen=True)
class VerifiedRead:
    """The outcome of a fully verified read."""

    sn: int
    status: str                 # "active" | "deleted" | "never-allocated"
    proof_kind: str
    data: bytes = b""
    weakly_signed: bool = False  # True when accepted under a burst key


class WormClient:
    """A verifying WORM client with its own (roughly synchronized) clock."""

    def __init__(self, ca_public_key: RsaPublicKey,
                 certificates: Iterable[Certificate],
                 clock, freshness_window: float = 300.0,
                 accept_unverifiable: bool = False,
                 signature_cache_size: int = _SIG_CACHE_SIZE) -> None:
        self._ca_key = ca_public_key
        self._clock = clock
        self.freshness_window = freshness_window
        self.accept_unverifiable = accept_unverifiable
        # fingerprint -> (public key, role)
        self._trusted: Dict[str, Tuple[RsaPublicKey, str]] = {}
        # LRU memo of signatures that already verified; see _signature_valid.
        self._sig_cache: "OrderedDict[Tuple[str, str, bytes, bytes], None]" \
            = OrderedDict()
        self._sig_cache_size = signature_cache_size
        self.sig_cache_hits = 0
        self.sig_cache_misses = 0
        for cert in certificates:
            self.add_certificate(cert)

    # -- trust management -----------------------------------------------------

    def add_certificate(self, cert: Certificate) -> None:
        """Admit a CA-certified SCPU key (e.g., a rotated burst key)."""
        if not CertificateAuthority.verify_certificate(cert, self._ca_key):
            raise VerificationError(
                f"certificate for role {cert.role!r} fails CA verification")
        self._trusted[cert.fingerprint] = (cert.public_key, cert.role)

    @property
    def now(self) -> float:
        return self._clock.now

    # -- envelope primitives -----------------------------------------------------

    def _check_envelope(self, signed: SignedEnvelope, purpose: str,
                        roles: Tuple[str, ...]) -> None:
        """Verify signature, purpose, signer role, and burst-key lifetime."""
        if signed.scheme == "hmac":
            if self.accept_unverifiable:
                return
            raise VerificationError(
                "construct is HMAC-witnessed and not yet client-verifiable")
        if signed.envelope.purpose != purpose:
            raise VerificationError(
                f"envelope purpose {signed.envelope.purpose!r} != expected {purpose!r}")
        trusted = self._trusted.get(signed.key_fingerprint)
        if trusted is None:
            raise VerificationError("envelope signed by an unknown key")
        public_key, role = trusted
        if role not in roles:
            raise VerificationError(
                f"envelope signed by role {role!r}; expected one of {roles}")
        if not self._signature_valid(signed, public_key):
            raise VerificationError(f"signature check failed for {purpose}")
        if role == "burst":
            lifetime = security_lifetime(public_key.bits)
            if self.now > signed.timestamp + lifetime:
                raise FreshnessError(
                    "short-lived signature outlived its security lifetime "
                    "without being strengthened")

    def _signature_valid(self, signed: SignedEnvelope,
                         public_key: RsaPublicKey) -> bool:
        """RSA-verify with a bounded memo of past successes.

        Repeated reads re-present the same signed constructs — the
        shared ``S_s(SN_current)``, a hot record's metasig/datasig,
        deletion-window bounds — and a signature that verified once
        verifies forever.  The memo key binds signer, hash, signature
        *and* the signed bytes, so a valid signature replayed onto
        different envelope contents still misses and fails the real
        check.  Time-dependent checks (freshness windows, burst-key
        lifetimes) stay outside the memo.
        """
        message = signed.envelope.canonical_bytes()
        key = (signed.key_fingerprint, signed.hash_name, signed.signature,
               message)
        if key in self._sig_cache:
            self._sig_cache.move_to_end(key)
            self.sig_cache_hits += 1
            return True
        self.sig_cache_misses += 1
        if not public_key.verify(message, signed.signature,
                                 hash_name=signed.hash_name):
            return False
        self._sig_cache[key] = None
        if len(self._sig_cache) > self._sig_cache_size:
            self._sig_cache.popitem(last=False)
        return True

    def _check_fresh(self, signed: SignedEnvelope) -> None:
        """Enforce the freshness window on a timestamped construct."""
        age = self.now - signed.timestamp
        if age > self.freshness_window:
            raise FreshnessError(
                f"construct is {age:.0f}s old; freshness window is "
                f"{self.freshness_window:.0f}s")
        if signed.timestamp > self.now + _CLOCK_SKEW:
            raise FreshnessError("construct timestamp is in the future")

    def _sn_current_value(self, signed: SignedEnvelope) -> int:
        """Validate and extract a fresh S_s(SN_current)."""
        self._check_envelope(signed, Purpose.SN_CURRENT, roles=("s",))
        self._check_fresh(signed)
        return int(signed.field("sn_current"))

    # -- VRD verification -----------------------------------------------------------

    def verify_vrd(self, vrd: VirtualRecordDescriptor,
                   records: Tuple[bytes, ...]) -> bool:
        """Check metasig and datasig of an active VRD against actual data.

        Returns True when both signatures hold over (SN, attr) and
        (SN, Hash(data)); raises on any mismatch.
        """
        self._check_envelope(vrd.metasig, Purpose.METASIG, roles=("s", "burst"))
        if vrd.metasig.field("sn") != vrd.sn:
            raise VerificationError("metasig signs a different SN")
        if vrd.metasig.field("attr") != vrd.attr.canonical_bytes():
            raise VerificationError("metasig does not match the VRD attributes")

        self._check_envelope(vrd.datasig, Purpose.DATASIG, roles=("s", "burst"))
        if vrd.datasig.field("sn") != vrd.sn:
            raise VerificationError("datasig signs a different SN")
        if len(records) != len(vrd.rdl):
            raise VerificationError("record count does not match the RDL")
        hasher = ChainedHasher()
        for payload in records:
            hasher.update(payload)
        if vrd.datasig.field("data_hash") != hasher.digest():
            raise VerificationError("record data does not match datasig")
        return True

    # -- the read-proof case analysis ---------------------------------------------------

    def verify_read(self, result: ReadResult, requested_sn: int) -> VerifiedRead:
        """Verify a store response end-to-end; raises on any tampering.

        This is the exhaustive case analysis of §4.2.2: every status the
        store may claim must be backed by the matching proof, and the
        claims are cross-checked against the requested SN.
        """
        if result.sn != requested_sn:
            raise VerificationError("store answered for a different SN")
        proof = result.proof

        if isinstance(proof, ActiveProof):
            if result.status != "active" or result.vrd is None:
                raise VerificationError("active proof without an active record")
            # The companion S_s(SN_current) is validated for authenticity
            # but not freshness here: for a *successful* read, metasig and
            # datasig alone prove authenticity, and the signed bound may
            # legitimately lag a very recent write by up to one refresh
            # interval.  Freshness only matters when the store *denies*
            # existence (the never-allocated case below).
            self._check_envelope(proof.sn_current, Purpose.SN_CURRENT, roles=("s",))
            self.verify_vrd(result.vrd, result.records)
            weak = (result.vrd.metasig.scheme == "hmac"
                    or self._trusted.get(result.vrd.metasig.key_fingerprint,
                                         (None, ""))[1] == "burst")
            return VerifiedRead(sn=requested_sn, status="active",
                                proof_kind=ProofKind.ACTIVE,
                                data=result.data, weakly_signed=weak)

        if isinstance(proof, DeletionProofResponse):
            self._check_envelope(proof.proof, Purpose.DELETION_PROOF, roles=("d",))
            if proof.proof.field("sn") != requested_sn:
                raise VerificationError("deletion proof names a different SN")
            return VerifiedRead(sn=requested_sn, status="deleted",
                                proof_kind=ProofKind.DELETION_PROOF)

        if isinstance(proof, BaseBoundProof):
            self._check_envelope(proof.sn_base, Purpose.SN_BASE, roles=("s",))
            expires_at = int(proof.sn_base.field("expires_at_us")) / 1e6
            if self.now >= expires_at:
                raise FreshnessError("S_s(SN_base) has expired; demand a fresh one")
            if requested_sn >= int(proof.sn_base.field("sn_base")):
                raise VerificationError(
                    "SN is not below the signed base; proof does not apply")
            return VerifiedRead(sn=requested_sn, status="deleted",
                                proof_kind=ProofKind.BELOW_BASE)

        if isinstance(proof, DeletionWindowProof):
            self._check_envelope(proof.lower, Purpose.WINDOW_LOWER, roles=("s",))
            self._check_envelope(proof.upper, Purpose.WINDOW_UPPER, roles=("s",))
            if proof.lower.field("window_id") != proof.upper.field("window_id"):
                raise VerificationError(
                    "window bounds are not correlated (spliced windows)")
            low = int(proof.lower.field("sn"))
            high = int(proof.upper.field("sn"))
            if not low <= requested_sn <= high:
                raise VerificationError("SN is outside the claimed deletion window")
            return VerifiedRead(sn=requested_sn, status="deleted",
                                proof_kind=ProofKind.DELETION_WINDOW)

        if isinstance(proof, NeverAllocatedProof):
            sn_current = self._sn_current_value(proof.sn_current)
            if requested_sn <= sn_current:
                raise VerificationError(
                    "store claims never-allocated for an SN inside the window "
                    "(record hiding)")
            return VerifiedRead(sn=requested_sn, status="never-allocated",
                                proof_kind=ProofKind.NEVER_ALLOCATED)

        # Proof objects from pluggable authentication schemes carry a
        # ``scheme`` discriminator; dispatch to the registered scheme's
        # verifier.  Imported lazily: repro.core.auth imports this module.
        scheme_name = getattr(proof, "scheme", None)
        if isinstance(scheme_name, str):
            from repro.core.auth import resolve_scheme
            from repro.core.errors import UnknownAlgorithmError
            try:
                scheme_cls = resolve_scheme(scheme_name)
            except UnknownAlgorithmError as exc:
                raise VerificationError(
                    f"proof claims unknown scheme {scheme_name!r}") from exc
            return scheme_cls.client_verify(self, result, requested_sn)

        raise VerificationError(f"unrecognized proof object: {proof!r}")
