"""Record catalog: attribute and time-range queries over a store.

The paper scopes indexing out ("we do not discuss name spaces, indexing
or content addressing here") — but its users need it: an examiner asks
for "all HIPAA records created in Q3", a compliance officer for
"everything expiring in the next 90 days", a litigation team for "every
record under hold".  :class:`RecordCatalog` answers those queries.

Trust posture, as always: the catalog is an *untrusted index*.  Query
results are SN lists; anything that matters gets verified through the
normal read path.  The one sharp edge is **completeness** — a poisoned
index could *omit* records from "find everything matching X", and no
per-record signature can prove a set is complete.  The catalog therefore
supports verified rebuilds (:meth:`rebuild_verified`): re-derive the
index from a full SN sweep in which every entry's metasig is checked, so
a rebuild-then-query is complete up to Theorem 1.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Set, Tuple

from repro.core.client import WormClient
from repro.core.errors import FreshnessError, TamperedError, VerificationError
from repro.core.worm import StrongWormStore

__all__ = ["RecordCatalog"]


class RecordCatalog:
    """Secondary indexes over a store's active records."""

    def __init__(self, store: StrongWormStore) -> None:
        self._store = store
        self._by_policy: Dict[str, Set[int]] = {}
        # sorted lists of (time, sn) for range queries; new entries are
        # appended and a single sort runs on the next query (bulk indexing
        # is O(n log n) total, not O(n²) insorts), and pruned entries are
        # tombstoned in place and compacted once they outnumber the live
        self._by_created: List[Tuple[float, int]] = []
        self._by_expiry: List[Tuple[float, int]] = []
        self._indexed: Set[int] = set()
        self._policy_of: Dict[int, str] = {}
        self._unsorted_tail = 0
        self._tombstones = 0

    # -- maintenance ----------------------------------------------------------

    def index_record(self, sn: int) -> bool:
        """Add one active record to the indexes; False if absent/known."""
        if sn in self._indexed:
            return False
        vrd = self._store.vrdt.get_active(sn)
        if vrd is None:
            return False
        self._by_policy.setdefault(vrd.attr.policy, set()).add(sn)
        self._policy_of[sn] = vrd.attr.policy
        self._by_created.append((vrd.attr.created_at, sn))
        self._by_expiry.append((vrd.attr.expires_at, sn))
        self._unsorted_tail += 1
        self._indexed.add(sn)
        return True

    def _ensure_sorted(self) -> None:
        if self._unsorted_tail:
            self._by_created.sort()
            self._by_expiry.sort()
            self._unsorted_tail = 0

    def index_all(self) -> int:
        """Index every currently active record; returns how many were new."""
        added = 0
        for sn in self._store.vrdt.active_sns:
            if self.index_record(sn):
                added += 1
        return added

    def prune_expired(self) -> int:
        """Drop entries whose records are no longer active.

        Removal is incremental: only the affected policy buckets are
        touched (emptied buckets are dropped, so multi-year churn cannot
        grow ``_by_policy`` without bound), and the sorted time lists are
        tombstoned rather than rebuilt — range queries filter against the
        live set and a compaction runs only once tombstones dominate.
        """
        dead = {sn for sn in self._indexed
                if not self._store.vrdt.is_active(sn)}
        if not dead:
            return 0
        for sn in dead:
            policy = self._policy_of.pop(sn)
            bucket = self._by_policy.get(policy)
            if bucket is not None:
                bucket.discard(sn)
                if not bucket:
                    del self._by_policy[policy]
        self._indexed -= dead
        self._tombstones += len(dead)
        if self._tombstones * 2 > len(self._by_created):
            self._by_created = [(t, sn) for t, sn in self._by_created
                                if sn in self._indexed]
            self._by_expiry = [(t, sn) for t, sn in self._by_expiry
                               if sn in self._indexed]
            self._tombstones = 0
        return len(dead)

    def rebuild_verified(self, client: WormClient) -> Tuple[int, List[int]]:
        """Full verified rebuild: sweep SNs 1..frontier, index what proves.

        Returns ``(indexed_count, violations)`` — SNs whose reads failed
        verification (tampering evidence, forwarded to the auditor).
        Completeness of subsequent queries then rests on the monotonic
        SN sweep, not on the old index's honesty.
        """
        self._by_policy.clear()
        self._by_created.clear()
        self._by_expiry.clear()
        self._indexed.clear()
        self._policy_of.clear()
        self._unsorted_tail = 0
        self._tombstones = 0
        violations: List[int] = []
        for sn in range(1, self._store.scpu.current_serial_number + 1):
            try:
                verified = client.verify_read(self._store.read(sn), sn)
            except (VerificationError, FreshnessError):
                violations.append(sn)
                continue
            except TamperedError:
                # The store's SCPU died mid-rebuild: the index would be
                # silently partial if we pressed on — escalate instead.
                raise
            except Exception:
                violations.append(sn)
                continue
            if verified.status == "active":
                self.index_record(sn)
        return len(self._indexed), violations

    # -- queries ---------------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self._indexed)

    def by_policy(self, policy: str) -> Tuple[int, ...]:
        """All indexed SNs governed by *policy*."""
        return tuple(sorted(self._by_policy.get(policy, ())))

    def created_between(self, start: float, end: float) -> Tuple[int, ...]:
        """SNs created in ``[start, end)``."""
        self._ensure_sorted()
        lo = bisect.bisect_left(self._by_created, (start, -1))
        hi = bisect.bisect_left(self._by_created, (end, -1))
        return tuple(sorted(sn for _, sn in self._by_created[lo:hi]
                            if sn in self._indexed))

    def expiring_between(self, start: float, end: float) -> Tuple[int, ...]:
        """SNs whose retention lapses in ``[start, end)``."""
        self._ensure_sorted()
        lo = bisect.bisect_left(self._by_expiry, (start, -1))
        hi = bisect.bisect_left(self._by_expiry, (end, -1))
        return tuple(sorted(sn for _, sn in self._by_expiry[lo:hi]
                            if sn in self._indexed))

    def under_litigation_hold(self) -> Tuple[int, ...]:
        """Indexed SNs currently held (reads live attr — holds change)."""
        held = []
        now = self._store.now
        for sn in self._indexed:
            vrd = self._store.vrdt.get_active(sn)
            if (vrd is not None and vrd.attr.litigation_hold
                    and now < vrd.attr.litigation_timeout):
                held.append(sn)
        return tuple(sorted(held))

    def query(self, policy: Optional[str] = None,
              created_after: Optional[float] = None,
              created_before: Optional[float] = None,
              expiring_before: Optional[float] = None) -> Tuple[int, ...]:
        """Conjunctive query across the indexes."""
        candidates: Optional[Set[int]] = None

        def intersect(sns) -> None:
            nonlocal candidates
            sns = set(sns)
            candidates = sns if candidates is None else candidates & sns

        if policy is not None:
            intersect(self._by_policy.get(policy, ()))
        if created_after is not None or created_before is not None:
            intersect(self.created_between(
                created_after if created_after is not None else 0.0,
                created_before if created_before is not None else float("inf")))
        if expiring_before is not None:
            intersect(self.expiring_between(0.0, expiring_before))
        if candidates is None:
            candidates = set(self._indexed)
        return tuple(sorted(candidates))
