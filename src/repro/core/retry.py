"""Virtual-time retry with capped exponential backoff.

The SCPU is a physical card on a physical bus: requests get dropped.
The store distinguishes two failure classes at its SCPU call sites:

* :class:`~repro.core.errors.TransientFaultError` — retry with capped
  exponential backoff until the per-operation budget runs out, then
  surface :class:`~repro.core.errors.ScpuUnavailableError`;
* :class:`~repro.core.errors.TamperedError` — permanent.  The card
  zeroized itself; retrying is not only useless but *wrong* (the paper's
  fail-safe: an attacked device yields nothing, ever).  It escalates
  immediately so the layer above can mark the failure domain degraded.

Backoff is **virtual-time-aware**: when the clock is advanceable (a
:class:`~repro.sim.manual_clock.ManualClock`), each backoff advances it,
so signature timestamps, freshness windows, and retention alarms all see
the delay.  Simulation clocks owned by the event engine cannot be pushed
from functional code; there the executor only counts attempts (the
functional layer is instantaneous by design) and accumulates the backoff
in :attr:`RetryStats.backoff_seconds` for the driver to replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.core.errors import ScpuUnavailableError, TransientFaultError
from repro.obs.bus import NULL_BUS, TelemetryBus

__all__ = ["RetryPolicy", "RetryStats", "RetryExecutor", "RetryingScpu"]


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs of the transient-fault retry loop.

    ``max_attempts`` counts the initial try; ``base_delay`` doubles per
    retry up to ``max_delay``; ``op_timeout`` caps the *total* virtual
    time an operation may spend backing off before giving up.  A policy
    with ``max_attempts=1`` disables retrying entirely.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    op_timeout: float = 10.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0 or self.op_timeout < 0:
            raise ValueError("retry delays must be non-negative")

    def delay(self, retry_index: int) -> float:
        """Backoff before the Nth retry (0-based): capped exponential."""
        return min(self.max_delay, self.base_delay * (2 ** retry_index))


@dataclass
class RetryStats:
    """What the retry loop did, for health reports and chaos assertions."""

    calls: int = 0
    retries: int = 0
    exhausted: int = 0
    backoff_seconds: float = 0.0
    by_op: Dict[str, int] = field(default_factory=dict)

    def merge(self, other: "RetryStats") -> None:
        self.calls += other.calls
        self.retries += other.retries
        self.exhausted += other.exhausted
        self.backoff_seconds += other.backoff_seconds
        for op, count in other.by_op.items():
            self.by_op[op] = self.by_op.get(op, 0) + count

    def as_dict(self) -> Dict[str, Any]:
        return {"calls": self.calls, "retries": self.retries,
                "exhausted": self.exhausted,
                "backoff_seconds": self.backoff_seconds,
                "by_op": dict(self.by_op)}


class RetryExecutor:
    """Runs callables under a :class:`RetryPolicy` against one clock."""

    def __init__(self, policy: Optional[RetryPolicy] = None,
                 clock: Optional[object] = None,
                 obs: Optional[TelemetryBus] = None) -> None:
        self.policy = policy if policy is not None else RetryPolicy()
        self.clock = clock
        self.stats = RetryStats()
        # Telemetry mirror of ``stats``: same increments, same moments,
        # so the bus totals reconcile with the merged RetryStats ledger.
        self.obs = obs if obs is not None else NULL_BUS
        if self.obs.enabled:
            self.obs.declare_counter("retry.calls")
            self.obs.declare_counter("retry.retries")
            self.obs.declare_counter("retry.exhausted")
            self.obs.declare_counter("retry.backoff_seconds")

    def _sleep(self, seconds: float) -> None:
        self.stats.backoff_seconds += seconds
        self.obs.inc("retry.backoff_seconds", seconds)
        advance = getattr(self.clock, "advance", None)
        if advance is not None:
            advance(seconds)

    def call(self, op: str, fn: Callable[..., Any], *args: Any,
             **kwargs: Any) -> Any:
        """Invoke *fn*, retrying transient faults per the policy.

        Permanent errors — :class:`TamperedError` and anything else that
        is not a :class:`TransientFaultError` — propagate on the first
        occurrence untouched.
        """
        self.stats.calls += 1
        self.obs.inc("retry.calls")
        policy = self.policy
        spent = 0.0
        retry_index = 0
        while True:
            try:
                return fn(*args, **kwargs)
            except TransientFaultError as exc:
                attempt = retry_index + 1
                delay = policy.delay(retry_index)
                if (attempt >= policy.max_attempts
                        or spent + delay > policy.op_timeout):
                    self.stats.exhausted += 1
                    self.obs.inc("retry.exhausted")
                    raise ScpuUnavailableError(
                        f"{op} still failing after {attempt} attempt(s) "
                        f"({spent:.3f}s backoff spent)") from exc
                self.stats.retries += 1
                self.stats.by_op[op] = self.stats.by_op.get(op, 0) + 1
                self.obs.inc("retry.retries")
                self._sleep(delay)
                spent += delay
                retry_index += 1


class RetryingScpu:
    """An :class:`ScpuLike` view that retries transient faults.

    Wraps a device so every trust-boundary service call runs through a
    :class:`RetryExecutor`; properties and non-service attributes
    forward untouched.  :class:`~repro.core.worm.StrongWormStore` uses
    this *internally* (``store.scpu`` stays the raw device the caller
    provided) so all of its SCPU call sites — including the window
    manager's signature refreshes — share one retry policy and one
    stats ledger.
    """

    def __init__(self, inner, executor: RetryExecutor) -> None:
        self._inner = inner
        self._executor = executor

    @property
    def inner(self):
        return self._inner

    @property
    def retry_stats(self) -> RetryStats:
        return self._executor.stats

    def __getattr__(self, name: str):
        return getattr(self._inner, name)


def _install_retry_forwarders() -> None:
    # The faultable-op table *is* the service surface worth retrying.
    from repro.faults.wrappers import SCPU_FAULTABLE_OPS

    for name in SCPU_FAULTABLE_OPS:
        def forwarder(self, *args, _name=name, **kwargs):
            return self._executor.call(
                _name, getattr(self._inner, _name), *args, **kwargs)
        forwarder.__name__ = name
        forwarder.__qualname__ = f"RetryingScpu.{name}"
        forwarder.__doc__ = f"Retry-gated forward of {name}."
        setattr(RetryingScpu, name, forwarder)


_install_retry_forwarders()
