"""Trust-domain taint analysis over the project call graph (W007).

Strong WORM's chain of custody is one sentence long: *bytes from the
untrusted host side pass through a verifier before any trust decision*.
This module makes that sentence checkable.  It runs a small abstract
interpreter over every project function, tracking which local values are
**tainted** (derived from an untrusted read) and which have been
**sanitized** (passed through a verifier that raises on mismatch), and
flags tainted values that reach a **sink** — a trust decision — with no
sanitizer on some path.

The lattice is deliberately tiny: a value is either clean or tainted
with a source label (``block-store bytes``, ``replica artifact`` …).
Branches merge by union — tainted-on-either-path is tainted — which is
exactly what catches the seeded-bug shape "the sanitizer call was
removed on one path".  Loops run to a two-pass fixpoint (enough for a
finite union lattice over loop-carried locals).

Interprocedural flow comes from *summaries*: a helper whose return value
derives from a source marks its callers' results tainted
(``_ensure_images()`` returning ``replica.materialize_shard(...)``
taints at every call site).  Summaries are source-driven — parameters
start clean — so the question W007 answers is "can untrusted **reads**
reach trust decisions", not "is any argument anywhere unvalidated".

Source / sanitizer / sink tables (DESIGN §13 documents the rationale
per entry; the tables are data so the next rule can extend them):

========== ==========================================================
sources    ``blocks.get`` / ``block_store.get`` /
           ``retry.call("block_store.get", ...)`` — block-store bytes;
           ``materialize_shard`` / ``journal_ledger`` /
           ``.source_certificates`` / ``.payload`` — replica
           artifacts; ``witness_for`` — witness-directory lookups;
           ``ServiceRequest.from_dict`` — service request decode
sanitizers any callee named ``verify*`` / ``_verify*`` / ``check_*`` /
           ``_check_*``, plus ``client_verify`` and
           ``rebuild_verified`` — they raise on mismatch, so the
           arguments *and* result are clean afterwards
sinks      ``index_record`` (catalog import), ``import_record``
           (record replay/import), and values returned from
           ``WormClient`` methods (what verifying callers trust)
========== ==========================================================
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.lint.engine import Finding
from repro.lint.project import CallSite, FunctionInfo, ProjectModel

__all__ = ["TaintAnalysis", "SINK_METHODS", "SANITIZER_PREFIXES",
           "SANITIZER_NAMES", "SOURCE_METHODS", "SOURCE_ATTRS",
           "BLOCK_STORE_RECEIVERS", "SINK_RETURN_CLASSES"]

#: Method names whose *call result* is untrusted host-side data.
SOURCE_METHODS: Dict[str, str] = {
    "materialize_shard": "replica catalog image",
    "journal_ledger": "mirrored journal entries",
    "witness_for": "witness-directory lookup",
}

#: Attribute reads that yield untrusted data regardless of receiver.
SOURCE_ATTRS: Dict[str, str] = {
    "payload": "replication-artifact payload",
    "source_certificates": "replica-held certificates",
}

#: Receiver names that denote the untrusted block store; ``.get`` on
#: them (or the retry-wrapped ``retry.call("block_store.get", ...)``
#: idiom) reads attacker-rewritable media.
BLOCK_STORE_RECEIVERS = frozenset({"blocks", "block_store", "_blocks"})

#: ``Class.method`` chains whose result is untrusted (wire decode).
SOURCE_CHAINS: Dict[str, str] = {
    "ServiceRequest.from_dict": "decoded service request",
}

#: Callee-name prefixes that sanitize their arguments and result.
SANITIZER_PREFIXES: Tuple[str, ...] = ("verify", "_verify", "check_",
                                       "_check_")

#: Exact callee names that sanitize (scheme dispatch + catalog rebuild).
SANITIZER_NAMES = frozenset({"client_verify", "rebuild_verified"})

#: Trust-decision calls: a tainted argument here is a W007.
SINK_METHODS: Dict[str, str] = {
    "index_record": "catalog import",
    "import_record": "record import/replay",
}

#: Classes whose public methods hand results to verifying callers —
#: returning tainted data from them launders it into client trust.
SINK_RETURN_CLASSES = frozenset({"WormClient"})


def _root_name(node: ast.AST) -> Optional[str]:
    """``self._images`` → ``self._images``; ``x[0].y`` → ``x``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        return f"{node.value.id}.{node.attr}"
    while isinstance(node, (ast.Attribute, ast.Subscript, ast.Call)):
        node = node.func if isinstance(node, ast.Call) else node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_sanitizer(name: Optional[str]) -> bool:
    if name is None:
        return False
    return name in SANITIZER_NAMES or name.startswith(SANITIZER_PREFIXES)


#: A taint environment: root name → source label (absent/None = clean).
_Env = Dict[str, str]


class TaintAnalysis:
    """Source→sanitizer→sink dataflow over one :class:`ProjectModel`."""

    #: Fixpoint bound for summary propagation (call-chain depth).
    MAX_PASSES = 12

    def __init__(self, project: ProjectModel) -> None:
        self.project = project
        #: fn qname → source label its return value carries, or None.
        self.summaries: Dict[str, Optional[str]] = {}
        self._compute_summaries()

    def _compute_summaries(self) -> None:
        for qname in self.project.functions:
            self.summaries[qname] = None
        for _ in range(self.MAX_PASSES):
            changed = False
            for qname, info in self.project.functions.items():
                if self.summaries[qname] is not None:
                    continue  # monotone: once tainted, stays tainted
                walker = _FunctionTaint(self, info, report=False)
                walker.run()
                if walker.returns_taint is not None:
                    self.summaries[qname] = walker.returns_taint
                    changed = True
            if not changed:
                break

    def findings(self) -> Iterator[Finding]:
        """W007 findings across every package function."""
        for info in self.project.functions_in_package():
            walker = _FunctionTaint(self, info, report=True)
            walker.run()
            yield from walker.findings


class _FunctionTaint:
    """The per-function abstract interpreter."""

    def __init__(self, analysis: TaintAnalysis, info: FunctionInfo,
                 report: bool) -> None:
        self.analysis = analysis
        self.project = analysis.project
        self.info = info
        self.report = report
        self.ctx = analysis.project.modules[info.module]
        self.sites: Dict[int, CallSite] = {
            id(site.node): site
            for site in analysis.project.call_sites(info.qname)}
        self.findings: List[Finding] = []
        self.returns_taint: Optional[str] = None
        self._reported: set = set()

    # -- driving -------------------------------------------------------------

    def run(self) -> None:
        env: _Env = {}
        self._exec_block(self.info.node.body, env)

    # -- statements ----------------------------------------------------------

    def _exec_block(self, stmts, env: _Env) -> None:
        for stmt in stmts:
            self._exec_stmt(stmt, env)

    @staticmethod
    def _merge(into: _Env, *branches: _Env) -> None:
        """Union-merge branch environments: tainted anywhere = tainted."""
        for branch in branches:
            for name, label in branch.items():
                if label is not None and into.get(name) is None:
                    into[name] = label

    def _exec_stmt(self, stmt, env: _Env) -> None:
        if isinstance(stmt, ast.Assign):
            label = self._eval(stmt.value, env)
            for target in stmt.targets:
                self._assign(target, label, env)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._assign(stmt.target, self._eval(stmt.value, env), env)
        elif isinstance(stmt, ast.AugAssign):
            label = self._eval(stmt.value, env)
            root = _root_name(stmt.target)
            if root is not None and label is not None:
                env[root] = env.get(root) or label
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value, env)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                label = self._eval(stmt.value, env)
                if label is not None:
                    if self.returns_taint is None:
                        self.returns_taint = label
                    self._check_sink_return(stmt, label)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test, env)
            then_env, else_env = dict(env), dict(env)
            self._exec_block(stmt.body, then_env)
            self._exec_block(stmt.orelse, else_env)
            env.clear()
            self._merge(env, then_env, else_env)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_label = self._eval(stmt.iter, env)
            self._assign(stmt.target, iter_label, env)
            for _ in range(2):   # loop-carried taint fixpoint
                body_env = dict(env)
                self._exec_block(stmt.body, body_env)
                self._merge(env, body_env)
            self._exec_block(stmt.orelse, env)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test, env)
            for _ in range(2):
                body_env = dict(env)
                self._exec_block(stmt.body, body_env)
                self._merge(env, body_env)
            self._exec_block(stmt.orelse, env)
        elif isinstance(stmt, ast.Try):
            body_env = dict(env)
            self._exec_block(stmt.body, body_env)
            self._merge(env, body_env)
            for handler in stmt.handlers:
                handler_env = dict(env)
                self._exec_block(handler.body, handler_env)
                self._merge(env, handler_env)
            self._exec_block(stmt.orelse, env)
            self._exec_block(stmt.finalbody, env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                label = self._eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, label, env)
            self._exec_block(stmt.body, env)
        elif isinstance(stmt, (ast.Raise, ast.Assert, ast.Delete)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child, env)
        # Nested defs/classes are separate functions; skip their bodies.

    def _assign(self, target, label: Optional[str], env: _Env) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, label, env)
            return
        if isinstance(target, ast.Starred):
            self._assign(target.value, label, env)
            return
        root = _root_name(target)
        if root is None:
            return
        if isinstance(target, ast.Subscript):
            # storing into a container taints the container, never cleans
            if label is not None:
                env[root] = env.get(root) or label
            return
        env[root] = label

    # -- expressions -----------------------------------------------------------

    def _eval(self, node, env: _Env) -> Optional[str]:
        if isinstance(node, ast.Name):
            return env.get(node.id)
        if isinstance(node, ast.Attribute):
            if node.attr in SOURCE_ATTRS:
                return SOURCE_ATTRS[node.attr]
            root = _root_name(node)
            if root is not None and env.get(root) is not None:
                return env[root]
            return self._eval(node.value, env)
        if isinstance(node, ast.Subscript):
            label = self._eval(node.value, env)
            self._eval(node.slice, env)
            return label
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.Constant):
            return None
        if isinstance(node, (ast.Lambda,)):
            return None
        if isinstance(node, ast.IfExp):
            self._eval(node.test, env)
            return (self._eval(node.body, env)
                    or self._eval(node.orelse, env))
        if isinstance(node, ast.BoolOp):
            labels = [self._eval(v, env) for v in node.values]
            return next((l for l in labels if l is not None), None)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            return self._eval_comprehension(node, env)
        # Generic: tainted if any child expression is tainted.
        label = None
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                child_label = self._eval(child, env)
                if label is None:
                    label = child_label
        return label

    def _eval_comprehension(self, node, env: _Env) -> Optional[str]:
        comp_env = dict(env)
        label = None
        for gen in node.generators:
            iter_label = self._eval(gen.iter, comp_env)
            self._assign(gen.target, iter_label, comp_env)
            if label is None:
                label = iter_label
            for cond in gen.ifs:
                self._eval(cond, comp_env)
        if isinstance(node, ast.DictComp):
            label = (self._eval(node.key, comp_env)
                     or self._eval(node.value, comp_env) or label)
        else:
            label = self._eval(node.elt, comp_env) or label
        return label

    # -- calls ---------------------------------------------------------------

    def _eval_call(self, call: ast.Call, env: _Env) -> Optional[str]:
        site = self.sites.get(id(call))
        arg_labels = [self._eval(arg, env) for arg in call.args]
        arg_labels += [self._eval(kw.value, env) for kw in call.keywords]
        receiver_label = None
        if isinstance(call.func, ast.Attribute):
            receiver_label = self._eval(call.func.value, env)
        args_tainted = next(
            (label for label in arg_labels if label is not None), None)

        callee = site.attr if site is not None else None

        # Sink check before anything else: a tainted argument reaching a
        # trust decision is the finding, sanitized-or-not afterwards.
        if callee in SINK_METHODS and args_tainted is not None:
            self._report_sink(call, callee, args_tainted)

        # Sanitizers raise on mismatch: their arguments are trustworthy
        # from here on, and so is the result.
        if _is_sanitizer(callee):
            for arg in list(call.args) + [kw.value for kw in call.keywords]:
                root = _root_name(arg)
                if root is not None:
                    env[root] = None
            return None

        source = self._source_label(site)
        if source is not None:
            return source

        # Project-internal callees: the precomputed summary.
        if site is not None and site.callee_qnames:
            for qname in site.callee_qnames:
                summary = self.analysis.summaries.get(qname)
                if summary is not None:
                    return summary
        # Unknown or clean callee: taint flows through arguments and the
        # receiver (str(tainted), tainted_dict.items(), ...).
        return args_tainted or receiver_label

    def _source_label(self, site: Optional[CallSite]) -> Optional[str]:
        if site is None or site.attr is None:
            return None
        if site.attr in SOURCE_METHODS:
            return SOURCE_METHODS[site.attr]
        if site.attr == "get" and site.receiver in BLOCK_STORE_RECEIVERS:
            return "block-store bytes"
        if (site.receiver in ("retry", "_retry") and site.attr == "call"
                and site.str_arg0 is not None
                and site.str_arg0.startswith("block_store.get")):
            return "block-store bytes"
        if site.receiver is not None:
            chain = f"{site.receiver}.{site.attr}"
            if chain in SOURCE_CHAINS:
                return SOURCE_CHAINS[chain]
        return None

    # -- findings ------------------------------------------------------------

    def _report_sink(self, call: ast.Call, sink: str, label: str) -> None:
        if not self.report or id(call) in self._reported:
            return
        self._reported.add(id(call))
        self.findings.append(self.ctx.finding(
            "W007", call,
            f"tainted value ({label}) reaches trust sink "
            f"'{sink}' ({SINK_METHODS[sink]}) with no verifier on this "
            f"path — untrusted host-side data must pass a verify_* "
            f"sanitizer before any trust decision"))

    def _check_sink_return(self, stmt: ast.Return, label: str) -> None:
        if not self.report:
            return
        class_qname = self.info.class_qname
        if class_qname is None:
            return
        class_name = class_qname.rsplit(".", 1)[-1]
        if class_name not in SINK_RETURN_CLASSES:
            return
        if self.info.name.startswith("_"):
            return   # private helpers are covered at their public callers
        if id(stmt) in self._reported:
            return
        self._reported.add(id(stmt))
        self.findings.append(self.ctx.finding(
            "W007", stmt,
            f"{class_name}.{self.info.name} returns a tainted value "
            f"({label}) to verifying callers — every byte handed back "
            f"from the client surface must be verified first"))
