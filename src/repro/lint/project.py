"""Whole-program model of the ``repro`` package for interprocedural rules.

The per-file checkers of :mod:`repro.lint.rules` see one module at a
time, which is exactly the blind spot of cross-layer chain-of-custody
bugs: a verify step skipped two calls away looks fine in every single
file.  :class:`ProjectModel` parses all of ``src/repro`` once and builds
the three structures the interprocedural rules (W007–W009) need:

* a **symbol table** per module — every local name resolved to the
  dotted thing it denotes (``now`` → ``time.time``, ``WC`` →
  ``repro.core.client.WormClient``), chasing aliases *and* re-exports
  across ``repro`` modules (``from repro.core import StrongWormStore``
  resolves through ``repro/core/__init__.py`` to the defining module);
* a **function table** — every function and method under a qualified
  name (``repro.core.worm.StrongWormStore.read``), with its AST node;
* a **call graph** — resolved call edges between those functions.

Call resolution is deliberately pragmatic, in line with the rest of
wormlint (names and shapes, not values):

* a plain ``name(...)`` call resolves through the symbol table;
* ``self.m(...)`` / ``cls.m(...)`` resolves through the enclosing class
  and its project-local base classes;
* any other ``obj.m(...)`` falls back to *class-hierarchy-analysis by
  name*: an edge to every project method called ``m`` (minus a denylist
  of container-protocol names that would connect everything to
  everything).  The result over-approximates — which is the right
  direction for "can this call reach an SCPU round-trip / raise
  ``TamperedError``" reachability questions, and sanctioned exceptions
  stay visible as per-line suppressions.

Fixtures build virtual projects with :meth:`ProjectModel.from_sources`,
mapping virtual paths to source strings exactly like
:func:`~repro.lint.engine.lint_source` does for single modules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.lint.engine import ModuleContext

__all__ = ["CallSite", "ClassInfo", "FunctionInfo", "ProjectModel",
           "module_name_for"]

#: Method names excluded from the by-name fallback resolution: container
#: and copy protocol names that appear on dozens of unrelated classes
#: (and on every dict/list), so an edge through them is noise, not flow.
_CHA_DENYLIST = frozenset({
    "add", "append", "clear", "copy", "discard", "extend", "get",
    "insert", "items", "keys", "pop", "popitem", "put", "remove",
    "setdefault", "sort", "update", "values",
})

#: Receiver names that denote the SCPU device or its retry-wrapped view
#: (shared with the per-file rules; see repro.lint.rules conventions).
SCPU_RECEIVERS = frozenset({"scpu", "_scpu", "scpu_rt", "_scpu_rt"})

#: Receiver names bound to the retry executor.
RETRY_RECEIVERS = frozenset({"retry", "_retry"})


def module_name_for(package_path: str) -> str:
    """``repro/core/worm.py`` → ``repro.core.worm`` (packages too)."""
    parts = package_path.split("/")
    if parts[-1] == "__init__.py":
        parts = parts[:-1]
    else:
        parts[-1] = parts[-1][:-3]  # strip .py
    return ".".join(parts)


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _terminal(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


@dataclass
class FunctionInfo:
    """One function or method of the project."""

    qname: str                       # repro.core.worm.StrongWormStore.read
    name: str                        # read
    module: str                      # repro.core.worm
    path: str                        # real or virtual file path
    node: ast.AST                    # FunctionDef / AsyncFunctionDef
    class_qname: Optional[str] = None


@dataclass
class ClassInfo:
    """One class of the project, with raw base names for MRO walking."""

    qname: str
    name: str
    module: str
    bases: Tuple[str, ...] = ()      # raw dotted names, resolved lazily
    methods: Dict[str, str] = field(default_factory=dict)  # name -> fn qname


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function, with its resolution."""

    node: ast.Call
    callee_qnames: Tuple[str, ...]   # resolved project functions (may be ())
    #: terminal receiver name for attribute calls (``scpu`` of
    #: ``self.scpu.witness_write``), None for plain-name calls.
    receiver: Optional[str]
    attr: Optional[str]              # method/function terminal name
    #: first positional argument when it is a string literal — the
    #: ``retry.call("scpu.witness_write", ...)`` op-label idiom.
    str_arg0: Optional[str] = None


class ProjectModel:
    """Symbol table + function table + call graph over one source tree."""

    def __init__(self, contexts: Iterable[ModuleContext]) -> None:
        #: module name -> context, for every module inside the package.
        self.modules: Dict[str, ModuleContext] = {}
        #: module name -> {local name -> dotted target}
        self.symbols: Dict[str, Dict[str, str]] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: method name -> [fn qnames] for the by-name fallback.
        self._methods_by_name: Dict[str, List[str]] = {}
        #: fn qname -> call sites (resolved lazily, all at once).
        self._call_sites: Dict[str, List[CallSite]] = {}
        self._edges: Optional[Dict[str, Set[str]]] = None

        for ctx in contexts:
            if ctx.package_path is None:
                continue
            self.modules[module_name_for(ctx.package_path)] = ctx
        for name, ctx in self.modules.items():
            self._index_module(name, ctx)

    # -- construction helpers ------------------------------------------------

    @classmethod
    def from_sources(cls, sources: Dict[str, str]) -> "ProjectModel":
        """Build a model from ``{virtual_path: source}`` (fixtures)."""
        return cls(ModuleContext(src, path) for path, src in sources.items())

    def _index_module(self, mod: str, ctx: ModuleContext) -> None:
        table: Dict[str, str] = {}
        for node in ctx.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        table[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".")[0]
                        table[head] = head
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(mod, ctx, node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    table[alias.asname or alias.name] = f"{base}.{alias.name}"
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qname = f"{mod}.{node.name}"
                table[node.name] = qname
                self.functions[qname] = FunctionInfo(
                    qname=qname, name=node.name, module=mod,
                    path=ctx.path, node=node)
            elif isinstance(node, ast.ClassDef):
                self._index_class(mod, ctx, node)
                table[node.name] = f"{mod}.{node.name}"
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                value = _dotted(node.value)
                if isinstance(target, ast.Name) and value is not None:
                    table[target.id] = value
        self.symbols[mod] = table

    def _index_class(self, mod: str, ctx: ModuleContext,
                     node: ast.ClassDef) -> None:
        qname = f"{mod}.{node.name}"
        bases = tuple(b for b in (_dotted(base) for base in node.bases)
                      if b is not None)
        info = ClassInfo(qname=qname, name=node.name, module=mod, bases=bases)
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn_qname = f"{qname}.{item.name}"
                info.methods[item.name] = fn_qname
                self.functions[fn_qname] = FunctionInfo(
                    qname=fn_qname, name=item.name, module=mod,
                    path=ctx.path, node=item, class_qname=qname)
                self._methods_by_name.setdefault(item.name, []).append(fn_qname)
        self.classes[qname] = info

    @staticmethod
    def _import_base(mod: str, ctx: ModuleContext,
                     node: ast.ImportFrom) -> Optional[str]:
        """Absolute module an ImportFrom pulls names out of."""
        if node.level == 0:
            return node.module
        parts = mod.split(".")
        if not ctx.path.endswith("__init__.py"):
            parts = parts[:-1]
        parts = parts[:len(parts) - (node.level - 1)] if node.level > 1 else parts
        if not parts:
            return node.module
        return ".".join(parts + ([node.module] if node.module else []))

    # -- symbol resolution ---------------------------------------------------

    def resolve(self, module: str, dotted: str,
                _seen: Optional[Set[Tuple[str, str]]] = None) -> Optional[str]:
        """Fully resolve *dotted* as seen from *module*.

        Returns a dotted absolute name (``time.time``,
        ``repro.core.worm.StrongWormStore``) or None when the head name
        is unbound in the module.  Re-exports through other project
        modules are chased to the defining module, with a cycle guard.
        """
        if _seen is None:
            _seen = set()
        key = (module, dotted)
        if key in _seen:
            # Cycle (incl. a module defining the very name it resolves):
            # let the caller keep its already-prefixed form.
            return None
        _seen.add(key)
        head, _, rest = dotted.partition(".")
        table = self.symbols.get(module, {})
        if head not in table:
            return None
        target = table[head]
        full = f"{target}.{rest}" if rest else target
        owner, remainder = self._split_known_module(full)
        if owner is not None and remainder:
            resolved = self.resolve(owner, remainder, _seen)
            if resolved is not None:
                return resolved
        return full

    def _split_known_module(self, dotted: str
                            ) -> Tuple[Optional[str], Optional[str]]:
        """Longest known-module prefix of *dotted* + the remainder."""
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            candidate = ".".join(parts[:cut])
            if candidate in self.modules:
                return candidate, ".".join(parts[cut:])
        return None, None

    def qname_of(self, module: str, dotted: str) -> Optional[str]:
        """Resolve *dotted* to a project function/class qname, if any."""
        resolved = self.resolve(module, dotted)
        if resolved is None:
            return None
        if resolved in self.functions or resolved in self.classes:
            return resolved
        return None

    # -- class hierarchy -----------------------------------------------------

    def method_in_hierarchy(self, class_qname: str,
                            method: str) -> Optional[str]:
        """Find *method* on the class or a project-local base, MRO-ish."""
        seen: Set[str] = set()
        queue = [class_qname]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            if method in info.methods:
                return info.methods[method]
            for base in info.bases:
                base_qname = self.qname_of(info.module, base)
                if base_qname is not None:
                    queue.append(base_qname)
        return None

    # -- call sites & the call graph -----------------------------------------

    def call_sites(self, fn_qname: str) -> List[CallSite]:
        """All call expressions inside *fn_qname*, with resolutions."""
        if fn_qname not in self._call_sites:
            info = self.functions[fn_qname]
            self._call_sites[fn_qname] = list(self._resolve_calls(info))
        return self._call_sites[fn_qname]

    def _resolve_calls(self, info: FunctionInfo) -> Iterator[CallSite]:
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            yield self._resolve_call(info, node)

    def _resolve_call(self, info: FunctionInfo, node: ast.Call) -> CallSite:
        func = node.func
        str_arg0 = None
        if node.args and isinstance(node.args[0], ast.Constant) \
                and isinstance(node.args[0].value, str):
            str_arg0 = node.args[0].value
        if isinstance(func, ast.Name):
            qname = self.qname_of(info.module, func.id)
            callees: Tuple[str, ...] = ()
            if qname in self.functions:
                callees = (qname,)
            elif qname in self.classes:
                init = self.classes[qname].methods.get("__init__")
                callees = (init,) if init else ()
            return CallSite(node=node, callee_qnames=callees,
                            receiver=None, attr=func.id, str_arg0=str_arg0)
        if isinstance(func, ast.Attribute):
            receiver = _terminal(func.value)
            attr = func.attr
            callees = self._resolve_method(info, func, receiver, attr)
            return CallSite(node=node, callee_qnames=callees,
                            receiver=receiver, attr=attr, str_arg0=str_arg0)
        return CallSite(node=node, callee_qnames=(), receiver=None, attr=None,
                        str_arg0=str_arg0)

    def _resolve_method(self, info: FunctionInfo, func: ast.Attribute,
                        receiver: Optional[str],
                        attr: str) -> Tuple[str, ...]:
        # self.m() / cls.m(): the enclosing class hierarchy wins.
        if receiver in ("self", "cls") and info.class_qname is not None \
                and isinstance(func.value, ast.Name):
            found = self.method_in_hierarchy(info.class_qname, attr)
            if found is not None:
                return (found,)
        # Fully dotted references (module.Class.method, module.function).
        chain = _dotted(func)
        if chain is not None:
            resolved = self.resolve(info.module, chain)
            if resolved in self.functions:
                return (resolved,)
            if resolved is not None and resolved in self.classes:
                init = self.classes[resolved].methods.get("__init__")
                if init:
                    return (init,)
        # Fallback: CHA by method name across the whole project.
        if attr.startswith("__") or attr in _CHA_DENYLIST:
            return ()
        return tuple(self._methods_by_name.get(attr, ()))

    def edges(self) -> Dict[str, Set[str]]:
        """The call graph: fn qname → set of resolved callee qnames."""
        if self._edges is None:
            self._edges = {}
            for qname in self.functions:
                targets: Set[str] = set()
                for site in self.call_sites(qname):
                    targets.update(site.callee_qnames)
                self._edges[qname] = targets
        return self._edges

    def transitive_closure(self, seeds: Set[str]) -> Set[str]:
        """Every function that can reach a *seed* through call edges."""
        edges = self.edges()
        reaches = set(seeds)
        changed = True
        while changed:
            changed = False
            for qname, targets in edges.items():
                if qname not in reaches and targets & reaches:
                    reaches.add(qname)
                    changed = True
        return reaches

    # -- queries the rules share ---------------------------------------------

    def context_for(self, fn_qname: str) -> ModuleContext:
        return self.modules[self.functions[fn_qname].module]

    def functions_in_package(self, prefix: str = "repro/"
                             ) -> Iterator[FunctionInfo]:
        for info in self.functions.values():
            ctx = self.modules[info.module]
            if ctx.in_package(prefix):
                yield info

    @staticmethod
    def is_direct_scpu_call(site: CallSite) -> bool:
        """An SCPU round-trip made right here (device or retry view)."""
        if site.receiver in SCPU_RECEIVERS:
            return True
        return (site.receiver in RETRY_RECEIVERS and site.attr == "call"
                and site.str_arg0 is not None
                and site.str_arg0.startswith("scpu."))
