"""Interprocedural wormlint rules: W007, W008, W009.

These rules run once per project over the
:class:`~repro.lint.project.ProjectModel` instead of once per module —
they exist precisely for the bugs a per-file checker cannot see:

* **W007 verify-before-trust** — untrusted host-side bytes reach a
  trust decision with no verifier on some path, even when the read, the
  (missing) verify, and the sink live in three different functions.
  The heavy lifting is in :mod:`repro.lint.dataflow`.
* **W008 tamper-terminal-transitive** — the interprocedural W004: a
  handler that can swallow :class:`TamperedError` is only flagged when
  the ``try`` body *actually reaches* a tamper trip through the call
  graph.  W004 says "this handler shape is dangerous"; W008 says "and
  here is the call chain that makes it a real breach-hider".  Sanctioned
  terminal handlers carry an explicit ``wormlint: disable=W008`` pragma —
  absorbing a tamper trip stays visible, per the W004 philosophy.
* **W009 scpu-in-loop** (advisory) — a per-record loop whose body does
  an SCPU round-trip, directly or transitively.  The paper's
  performance model charges every SCPU crossing; ROADMAP's hot-path
  campaign wants them batched per *flush*, not per record.  Advisory
  severity: reported, never gates CI.

Findings point at real module locations, so per-line suppressions and
the committed baseline work exactly as for per-file rules.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.lint.engine import Finding, ProjectChecker, register
from repro.lint.dataflow import TaintAnalysis
from repro.lint.project import CallSite, FunctionInfo, ProjectModel
from repro.lint.rules import TamperTerminalChecker, _exception_names, \
    _BROAD_EXCEPTIONS, terminal_name

__all__ = ["VerifyBeforeTrustChecker", "TamperTransitiveChecker",
           "ScpuInLoopChecker"]


# ---------------------------------------------------- W007 verify-before-trust

@register
class VerifyBeforeTrustChecker(ProjectChecker):
    """W007: untrusted data must pass a verifier before any trust sink.

    The chain-of-custody rule of the whole design (PAPER.md: the main
    CPU and media are adversarial; only SCPU-signed proofs are
    trusted).  A catalog import of raw block-store bytes, a replica
    payload replayed without its VRD check, a witness handed to a
    client un-audited — each is this rule, and each can span several
    calls.  The taint engine tracks source-labelled values through
    assignments, branches (union at merges: sanitized on *every* path
    or it is not sanitized), and project-function summaries.

    Cross-*stage* custody — where the verify happened in an earlier
    checkpointed stage over data the current stage re-reads, as in
    ``SiteRecovery`` VERIFY→REPLAY — is invisible to dataflow and is
    sanctioned with an explicit suppression citing the stage machine.
    """

    rule = "W007"
    title = "verify-before-trust"
    rationale = ("tainted host-side data reaching catalog import / record "
                 "replay / client returns without a verify_* on every "
                 "path defeats the trust model")

    def check_project(self, project: ProjectModel) -> Iterator[Finding]:
        yield from TaintAnalysis(project).findings()


# ----------------------------------------- W008 tamper-terminal (transitive)

@register
class TamperTransitiveChecker(ProjectChecker):
    """W008: no transitive caller may swallow ``TamperedError``.

    W004 flags handler *shapes* per file; this rule re-asks the question
    with reachability: does the ``try`` body — through any chain of
    project calls — reach a ``raise TamperedError`` or an SCPU
    round-trip (which may trip the tamper latch)?  If yes, a swallowing
    handler is hiding a breach no matter how many frames down it
    starts.  If no, the handler is W004's business at most.

    Call resolution over-approximates (CHA by name), which is the safe
    direction here; genuinely sanctioned terminal handlers (degraded-
    mode mirrors, top-level CLI rendering) say so with
    ``wormlint: disable=W008`` at the handler line.
    """

    rule = "W008"
    title = "tamper-terminal-transitive"
    rationale = ("a broad handler over code that transitively reaches "
                 "TamperedError converts an enclosure breach into a "
                 "silent retry, frames away from the raise")

    def check_project(self, project: ProjectModel) -> Iterator[Finding]:
        reaches = self._tamper_reachers(project)
        for info in project.functions_in_package():
            sites = {id(site.node): site
                     for site in project.call_sites(info.qname)}
            ctx = project.modules[info.module]
            for node in ast.walk(info.node):
                if isinstance(node, ast.Try):
                    yield from self._check_try(ctx, node, sites, reaches)

    # -- reachability --------------------------------------------------------

    @staticmethod
    def _raises_tamper_here(info: FunctionInfo) -> bool:
        for node in ast.walk(info.node):
            if isinstance(node, ast.Raise) and node.exc is not None:
                target = node.exc
                if isinstance(target, ast.Call):
                    target = target.func
                if terminal_name(target) == "TamperedError":
                    return True
        return False

    def _tamper_reachers(self, project: ProjectModel) -> Set[str]:
        """Functions that can (transitively) trip or raise tamper."""
        seeds: Set[str] = set()
        for qname, info in project.functions.items():
            if self._raises_tamper_here(info):
                seeds.add(qname)
                continue
            if any(ProjectModel.is_direct_scpu_call(site)
                   for site in project.call_sites(qname)):
                seeds.add(qname)
        return project.transitive_closure(seeds)

    def _try_reaches_tamper(self, node: ast.Try,
                            sites: Dict[int, CallSite],
                            reaches: Set[str]) -> Tuple[bool, str]:
        """(reachable?, culprit description) for the ``try`` body."""
        for stmt in node.body:
            for inner in ast.walk(stmt):
                if isinstance(inner, ast.Raise) and inner.exc is not None:
                    target = inner.exc
                    if isinstance(target, ast.Call):
                        target = target.func
                    if terminal_name(target) == "TamperedError":
                        return True, "a direct raise in the try body"
                if not isinstance(inner, ast.Call):
                    continue
                site = sites.get(id(inner))
                if site is None:
                    continue
                if ProjectModel.is_direct_scpu_call(site):
                    label = site.str_arg0 or f"{site.receiver}.{site.attr}"
                    return True, f"the SCPU round-trip '{label}'"
                hit = next((q for q in site.callee_qnames if q in reaches),
                           None)
                if hit is not None:
                    return True, f"the call chain through '{hit}'"
        return False, ""

    # -- handler triage (W004 shapes, reachability-gated) --------------------

    def _check_try(self, ctx, node: ast.Try, sites: Dict[int, CallSite],
                   reaches: Set[str]) -> Iterator[Finding]:
        reachable, culprit = self._try_reaches_tamper(node, sites, reaches)
        if not reachable:
            return
        tamper_escalated = False
        for handler in node.handlers:
            names = _exception_names(handler.type)
            catches_tamper = "TamperedError" in names
            is_broad = (handler.type is None
                        or bool(_BROAD_EXCEPTIONS.intersection(names)))
            if catches_tamper:
                if TamperTerminalChecker._reraises(handler):
                    tamper_escalated = True
                else:
                    yield ctx.finding(
                        self.rule, handler,
                        f"handler swallows TamperedError reachable via "
                        f"{culprit} — tamper trips are terminal on every "
                        f"call path; escalate or sanction with "
                        f"disable=W008")
                continue
            if is_broad and not tamper_escalated:
                if TamperTerminalChecker._reraises(handler):
                    tamper_escalated = True
                    continue
                caught = " / ".join(names) if names else "everything"
                yield ctx.finding(
                    self.rule, handler,
                    f"broad handler ({caught}) can swallow a TamperedError "
                    f"raised via {culprit} — re-raise tamper trips or "
                    f"sanction this terminal handler with disable=W008")


# ----------------------------------------------------------- W009 scpu-in-loop

#: Modules where flagging SCPU work in a loop is meaningless: the device
#: itself, the retry executor (a loop by definition), and the strengthen
#: queue drain (batched by design, the loop *is* the batch boundary).
_W009_EXEMPT_PREFIXES = ("repro/hardware/", "repro/lint/")
_W009_EXEMPT_MODULES = frozenset({"repro/core/retry.py"})


@register
class ScpuInLoopChecker(ProjectChecker):
    """W009 (advisory): SCPU round-trips inside per-record loops.

    Every crossing into the secure coprocessor pays the paper's modelled
    device latency; a loop body that signs, seals, or witnesses one
    record at a time serialises the whole workload behind the card.
    ROADMAP's hot-path campaign amortises crossings per *flush* —
    group-commit batches, cached window proofs — so a per-iteration
    crossing is exactly the shape worth staring at.

    Advisory severity: these findings are printed (and exported in
    SARIF) but never fail the run — some loops are genuinely per-record
    by protocol (key-rotation re-sealing).  One finding per loop, naming
    the first offending call.
    """

    rule = "W009"
    title = "scpu-in-loop"
    rationale = ("per-record SCPU round-trips serialise throughput behind "
                 "the card; batch or hoist them per flush (perf campaign)")
    severity = "advisory"

    def check_project(self, project: ProjectModel) -> Iterator[Finding]:
        scpu_users = self._scpu_users(project)
        for info in project.functions_in_package():
            ctx = project.modules[info.module]
            pkg = ctx.package_path or ""
            if pkg.startswith(_W009_EXEMPT_PREFIXES) \
                    or pkg in _W009_EXEMPT_MODULES:
                continue
            sites = {id(site.node): site
                     for site in project.call_sites(info.qname)}
            claimed: Set[int] = set()
            for loop in self._loops(info.node):
                finding = self._check_loop(ctx, loop, sites, scpu_users,
                                           claimed)
                if finding is not None:
                    yield finding

    @staticmethod
    def _scpu_users(project: ProjectModel) -> Set[str]:
        seeds = {qname for qname in project.functions
                 if any(ProjectModel.is_direct_scpu_call(site)
                        for site in project.call_sites(qname))}
        return project.transitive_closure(seeds)

    @staticmethod
    def _loops(fn_node: ast.AST) -> Iterator[ast.AST]:
        for node in ast.walk(fn_node):
            if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                yield node

    def _check_loop(self, ctx, loop, sites: Dict[int, CallSite],
                    scpu_users: Set[str], claimed: Set[int]):
        body: List[ast.stmt] = list(loop.body) + list(
            getattr(loop, "orelse", []))
        for stmt in body:
            for inner in ast.walk(stmt):
                if not isinstance(inner, ast.Call) or id(inner) in claimed:
                    continue
                site = sites.get(id(inner))
                if site is None:
                    continue
                if ProjectModel.is_direct_scpu_call(site):
                    claimed.add(id(inner))
                    label = site.str_arg0 or f"{site.receiver}.{site.attr}"
                    return ctx.finding(
                        self.rule, loop,
                        f"SCPU round-trip '{label}' inside a loop at line "
                        f"{inner.lineno} — each crossing pays device "
                        f"latency; batch per flush",
                        severity=self.severity)
                hit = next((q for q in site.callee_qnames
                            if q in scpu_users), None)
                if hit is not None:
                    claimed.add(id(inner))
                    return ctx.finding(
                        self.rule, loop,
                        f"call at line {inner.lineno} transitively reaches "
                        f"the SCPU via '{hit}' inside a loop — consider "
                        f"batching the crossing per flush",
                        severity=self.severity)
        return None
