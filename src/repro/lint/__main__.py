"""``python -m repro.lint`` — the wormlint command line.

Exit status: 0 clean (modulo baseline), 1 new findings or unparsable
files, 2 usage errors.  ``--write-baseline`` regenerates the committed
grandfather file from the current findings and exits 0 — a deliberate,
reviewable act.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.lint.engine import all_rules, lint_paths
from repro.lint.reporters import render_json, render_text

DEFAULT_PATHS = ["src", "tests"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="wormlint: compliance-invariant checks for Strong WORM")
    parser.add_argument("paths", nargs="*", default=None,
                        help=f"files/directories to lint "
                             f"(default: {' '.join(DEFAULT_PATHS)})")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format (default: text)")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule ids to run (e.g. W002,W004)")
    parser.add_argument("--baseline", metavar="FILE",
                        default=DEFAULT_BASELINE_NAME,
                        help="baseline file of grandfathered findings "
                             f"(default: {DEFAULT_BASELINE_NAME})")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline: report every finding")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite the baseline from current findings")
    parser.add_argument("--list-rules", action="store_true",
                        help="describe the registered rules and exit")
    return parser


def _list_rules() -> str:
    lines = []
    for rule, cls in all_rules().items():
        lines.append(f"{rule}  {cls.title}")
        lines.append(f"      {cls.rationale}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0

    select = None
    if args.select:
        select = [token.strip() for token in args.select.split(",")
                  if token.strip()]

    paths = args.paths if args.paths else DEFAULT_PATHS
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        print(f"wormlint: no such path(s): {', '.join(missing)}",
              file=sys.stderr)
        return 2

    baseline_path = Path(args.baseline)
    baseline = None
    if not args.no_baseline and not args.write_baseline:
        if baseline_path.exists():
            try:
                baseline = Baseline.load(baseline_path)
            except ValueError as exc:
                print(f"wormlint: {exc}", file=sys.stderr)
                return 2

    try:
        result = lint_paths(paths, select=select, baseline=baseline)
    except ValueError as exc:   # unknown --select rule
        print(f"wormlint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        Baseline.from_findings(result.findings).dump(baseline_path)
        print(f"wormlint: wrote {len(result.findings)} finding(s) to "
              f"{baseline_path}")
        return 0

    print(render_text(result) if args.format == "text"
          else render_json(result))
    return 0 if result.clean else 1


if __name__ == "__main__":
    sys.exit(main())
