"""``python -m repro.lint`` — the wormlint command line.

Exit status: 0 clean (modulo baseline), 1 new findings or unparsable
files, 2 usage errors.  ``--write-baseline`` regenerates the committed
grandfather file from the current findings and exits 0 — a deliberate,
reviewable act; ``--prune-baseline`` only ever shrinks it.

``--project`` builds the whole-program model and runs the
interprocedural rules (W007–W009) on top of the per-file set;
``--diff REF`` keeps only findings on lines changed since the merge
base with REF (project-rule findings are kept per changed *file* — the
taint chain is not a per-line property); ``--baseline-gate REF`` fails
if the committed baseline grew relative to its copy at REF.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.lint.engine import all_rules, lint_paths
from repro.lint.reporters import render_json, render_sarif, render_text

DEFAULT_PATHS = ["src", "tests"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="wormlint: compliance-invariant checks for Strong WORM")
    parser.add_argument("paths", nargs="*", default=None,
                        help=f"files/directories to lint "
                             f"(default: {' '.join(DEFAULT_PATHS)})")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text",
                        help="report format (default: text)")
    parser.add_argument("--output", metavar="FILE",
                        help="write the report to FILE instead of stdout")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule ids to run (e.g. W002,W004)")
    parser.add_argument("--project", action="store_true",
                        help="build the whole-program model and run the "
                             "interprocedural rules (W007-W009)")
    parser.add_argument("--diff", metavar="REF",
                        help="report only findings on lines changed since "
                             "the merge base with REF")
    parser.add_argument("--baseline", metavar="FILE",
                        default=DEFAULT_BASELINE_NAME,
                        help="baseline file of grandfathered findings "
                             f"(default: {DEFAULT_BASELINE_NAME})")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline: report every finding")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite the baseline from current findings")
    parser.add_argument("--prune-baseline", action="store_true",
                        help="drop stale fingerprints from the baseline "
                             "(it only ever shrinks)")
    parser.add_argument("--baseline-gate", metavar="REF",
                        help="fail if the baseline grew relative to its "
                             "committed copy at REF")
    parser.add_argument("--list-rules", action="store_true",
                        help="describe the registered rules and exit")
    return parser


def _list_rules() -> str:
    lines = []
    for rule, cls in all_rules().items():
        tag = " (advisory)" if cls.severity == "advisory" else ""
        scope = "project" if cls.requires_project else "module"
        lines.append(f"{rule}  {cls.title}{tag} [{scope}]")
        lines.append(f"      {cls.rationale}")
    return "\n".join(lines)


def _baseline_gate(baseline_path: Path, ref: str) -> int:
    """0 when the baseline did not grow since *ref*, 1 otherwise."""
    proc = subprocess.run(
        ["git", "show", f"{ref}:{baseline_path.as_posix()}"],
        capture_output=True, text=True)
    if proc.returncode != 0:
        # No baseline at the ref (new file there counts as empty).
        old = Baseline.empty()
    else:
        old = Baseline.loads(proc.stdout, f"{ref}:{baseline_path}")
    current = (Baseline.load(baseline_path) if baseline_path.exists()
               else Baseline.empty())
    grown = current.growth_since(old)
    if grown:
        print(f"wormlint: baseline grew since {ref} — fix the findings or "
              "suppress them with a reviewed pragma instead:",
              file=sys.stderr)
        for label in grown:
            print(f"  + {label}", file=sys.stderr)
        return 1
    print(f"wormlint: baseline did not grow since {ref} "
          f"({len(current)} entr{'y' if len(current) == 1 else 'ies'})")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0

    baseline_path = Path(args.baseline)
    if args.baseline_gate:
        try:
            return _baseline_gate(baseline_path, args.baseline_gate)
        except ValueError as exc:
            print(f"wormlint: {exc}", file=sys.stderr)
            return 2

    select = None
    if args.select:
        select = [token.strip() for token in args.select.split(",")
                  if token.strip()]

    paths = args.paths if args.paths else DEFAULT_PATHS
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        print(f"wormlint: no such path(s): {', '.join(missing)}",
              file=sys.stderr)
        return 2

    rewriting = args.write_baseline or args.prune_baseline
    baseline = None
    if not args.no_baseline and not rewriting:
        if baseline_path.exists():
            try:
                baseline = Baseline.load(baseline_path)
            except ValueError as exc:
                print(f"wormlint: {exc}", file=sys.stderr)
                return 2

    try:
        result = lint_paths(paths, select=select, baseline=baseline,
                            project=args.project)
    except ValueError as exc:   # unknown --select rule
        print(f"wormlint: {exc}", file=sys.stderr)
        return 2

    if args.prune_baseline:
        if not baseline_path.exists():
            print(f"wormlint: no baseline at {baseline_path} to prune",
                  file=sys.stderr)
            return 2
        try:
            committed = Baseline.load(baseline_path)
        except ValueError as exc:
            print(f"wormlint: {exc}", file=sys.stderr)
            return 2
        pruned, dropped = committed.pruned_to(result.findings)
        pruned.dump(baseline_path)
        if dropped:
            print(f"wormlint: pruned {len(dropped)} stale entr"
                  f"{'y' if len(dropped) == 1 else 'ies'} from "
                  f"{baseline_path}:")
            for label in dropped:
                print(f"  - {label}")
        else:
            print(f"wormlint: baseline {baseline_path} has no stale entries")
        return 0

    if args.write_baseline:
        Baseline.from_findings(result.findings).dump(baseline_path)
        print(f"wormlint: wrote {len(result.findings)} finding(s) to "
              f"{baseline_path}")
        return 0

    if args.diff:
        from repro.lint.diff import changed_lines, filter_findings, merge_base
        try:
            base = merge_base(args.diff)
            changes = changed_lines(base)
        except ValueError as exc:
            print(f"wormlint: {exc}", file=sys.stderr)
            return 2
        result.findings = filter_findings(result.findings, changes)
        result.advisories = filter_findings(result.advisories, changes)
        result.stale_baseline = []   # meaningless on a partial view

    renderers = {"text": render_text, "json": render_json,
                 "sarif": render_sarif}
    report = renderers[args.format](result)
    if args.output:
        Path(args.output).write_text(report + "\n", encoding="utf-8")
        print(f"wormlint: wrote {args.format} report to {args.output}")
    else:
        print(report)
    return 0 if result.clean else 1


if __name__ == "__main__":
    sys.exit(main())
