"""The wormlint engine: contexts, the checker registry, and the runner.

The engine is deliberately small: it parses each file once, hands the
:class:`ModuleContext` to every registered :class:`Checker`, strips
findings suppressed with ``# wormlint: disable=W00x`` comments, and
(optionally) subtracts a committed :class:`~repro.lint.baseline.Baseline`
of grandfathered findings.  All domain knowledge lives in
:mod:`repro.lint.rules`.

Checkers see files through their *package path* — the path of the module
inside the ``repro`` package (``repro/core/worm.py``) — so scope
predicates ("only in ``repro.core``", "not in ``repro.hardware``") are
one string comparison, and test fixtures can impersonate any module by
linting a source string under a virtual path (:func:`lint_source`).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Type

__all__ = [
    "Checker",
    "Finding",
    "LintResult",
    "ModuleContext",
    "all_rules",
    "lint_paths",
    "lint_source",
    "register",
]

_RULE_RE = re.compile(r"^W\d{3}$|^E999$")
_SUPPRESS_RE = re.compile(r"#\s*wormlint:\s*disable=([A-Z0-9,\s]+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str          # file path as given to the runner (posix separators)
    line: int          # 1-based
    col: int           # 0-based, as in the AST
    message: str
    source_line: str = ""   # stripped text of the offending line

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"

    def as_dict(self) -> Dict[str, object]:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message,
                "source_line": self.source_line}


class ModuleContext:
    """Everything a checker may look at for one module."""

    def __init__(self, source: str, path: str,
                 tree: Optional[ast.Module] = None) -> None:
        self.source = source
        self.path = path.replace("\\", "/")
        self.lines = source.splitlines()
        self.tree = tree if tree is not None else ast.parse(source, path)
        self.package_path = self._derive_package_path(self.path)

    @staticmethod
    def _derive_package_path(path: str) -> Optional[str]:
        """Path inside the ``repro`` package, or None for non-package files.

        ``src/repro/core/worm.py`` → ``repro/core/worm.py``;
        ``tests/core/test_worm.py`` → ``None`` (rules scoped to package
        code skip it).
        """
        parts = path.split("/")
        for index, part in enumerate(parts[:-1]):
            if part == "repro" and (index == 0 or parts[index - 1] != "tests"):
                return "/".join(parts[index:])
        return None

    def in_package(self, prefix: str) -> bool:
        """True when this module lives under *prefix* (``repro/core/``)."""
        return (self.package_path is not None
                and self.package_path.startswith(prefix))

    def is_module(self, package_path: str) -> bool:
        return self.package_path == package_path

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(rule=rule, path=self.path, line=lineno, col=col,
                       message=message, source_line=self.source_line(lineno))


class Checker:
    """Base class of one wormlint rule.

    Subclasses set :attr:`rule` / :attr:`title` / :attr:`rationale` and
    implement :meth:`check`, yielding :class:`Finding` objects.  A fresh
    checker instance is created per run (checkers may keep per-run
    state), and :meth:`check` is called once per module.
    """

    rule: str = "W000"
    title: str = ""
    rationale: str = ""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: Dict[str, Type[Checker]] = {}


def register(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator adding a checker to the global registry."""
    if not _RULE_RE.match(cls.rule):
        raise ValueError(f"checker rule id {cls.rule!r} must look like W123")
    if cls.rule in _REGISTRY and _REGISTRY[cls.rule] is not cls:
        raise ValueError(f"duplicate checker for rule {cls.rule}")
    _REGISTRY[cls.rule] = cls
    return cls


def all_rules() -> Dict[str, Type[Checker]]:
    """The registry, rule id → checker class (import-populated)."""
    # Ensure the built-in rules registered even when the engine module is
    # imported directly rather than through the package __init__.
    from repro.lint import rules as _rules  # noqa: F401
    return dict(sorted(_REGISTRY.items()))


# ---------------------------------------------------------------- suppression

def _suppressed_rules(line: str) -> frozenset:
    match = _SUPPRESS_RE.search(line)
    if not match:
        return frozenset()
    return frozenset(
        token.strip() for token in match.group(1).split(",") if token.strip())


def apply_suppressions(ctx: ModuleContext,
                       findings: Iterable[Finding]) -> List[Finding]:
    """Drop findings whose source line carries a matching disable comment."""
    kept: List[Finding] = []
    for finding in findings:
        raw = (ctx.lines[finding.line - 1]
               if 1 <= finding.line <= len(ctx.lines) else "")
        if finding.rule in _suppressed_rules(raw):
            continue
        kept.append(finding)
    return kept


# -------------------------------------------------------------------- running

@dataclass
class LintResult:
    """Outcome of one lint run, pre/post baseline subtraction."""

    findings: List[Finding] = field(default_factory=list)  # new (not baselined)
    baselined: int = 0        # findings matched by the baseline
    stale_baseline: List[str] = field(default_factory=list)  # fixed entries
    files_checked: int = 0
    parse_errors: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings


def _selected_checkers(select: Optional[Sequence[str]]) -> List[Checker]:
    registry = all_rules()
    if select:
        unknown = [rule for rule in select if rule not in registry]
        if unknown:
            raise ValueError(f"unknown rule(s): {', '.join(unknown)}")
        return [registry[rule]() for rule in select]
    return [cls() for cls in registry.values()]


def lint_module(ctx: ModuleContext,
                select: Optional[Sequence[str]] = None) -> List[Finding]:
    """All non-suppressed findings for one parsed module."""
    findings: List[Finding] = []
    for checker in _selected_checkers(select):
        findings.extend(checker.check(ctx))
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return apply_suppressions(ctx, findings)


def lint_source(source: str, virtual_path: str,
                select: Optional[Sequence[str]] = None) -> List[Finding]:
    """Lint a source string as if it lived at *virtual_path*.

    The fixture entry point: ``virtual_path`` controls the package-path
    scoping exactly as a real file's location would.
    """
    return lint_module(ModuleContext(source, virtual_path), select=select)


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    seen = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            key = candidate.resolve()
            if key in seen:
                continue
            seen.add(key)
            yield candidate


def lint_paths(paths: Sequence[str],
               select: Optional[Sequence[str]] = None,
               baseline: Optional["Baseline"] = None) -> LintResult:
    """Lint files/directories; subtract *baseline* when given."""
    from repro.lint.baseline import Baseline  # local: avoid import cycle

    result = LintResult()
    collected: List[Finding] = []
    for path in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            collected.append(Finding(
                rule="E999", path=str(path), line=1, col=0,
                message=f"unreadable file: {exc}"))
            result.parse_errors += 1
            continue
        try:
            ctx = ModuleContext(source, str(path))
        except SyntaxError as exc:
            collected.append(Finding(
                rule="E999", path=str(path), line=exc.lineno or 1, col=0,
                message=f"syntax error: {exc.msg}"))
            result.parse_errors += 1
            continue
        result.files_checked += 1
        collected.extend(lint_module(ctx, select=select))

    if baseline is None:
        baseline = Baseline.empty()
    fresh, matched, stale = baseline.partition(collected)
    result.findings = fresh
    result.baselined = matched
    result.stale_baseline = stale
    return result
