"""The wormlint engine: contexts, the checker registry, and the runner.

The engine is deliberately small: it parses each file once, hands the
:class:`ModuleContext` to every registered :class:`Checker`, strips
findings suppressed with ``wormlint: disable=W00x`` comments, and
(optionally) subtracts a committed :class:`~repro.lint.baseline.Baseline`
of grandfathered findings.  All domain knowledge lives in
:mod:`repro.lint.rules`.

Checkers see files through their *package path* — the path of the module
inside the ``repro`` package (``repro/core/worm.py``) — so scope
predicates ("only in ``repro.core``", "not in ``repro.hardware``") are
one string comparison, and test fixtures can impersonate any module by
linting a source string under a virtual path (:func:`lint_source`).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Type

__all__ = [
    "Checker",
    "Finding",
    "LintResult",
    "ModuleContext",
    "ProjectChecker",
    "all_rules",
    "lint_paths",
    "lint_project_sources",
    "lint_source",
    "register",
]

_RULE_RE = re.compile(r"^W\d{3}$|^E99[89]$")
_SUPPRESS_RE = re.compile(r"#\s*wormlint:\s*disable=([A-Z0-9,\s]+)")

#: Engine-reserved pseudo-rules, always legal in suppression pragmas.
_ENGINE_RULES = frozenset({"E998", "E999"})


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str          # file path as given to the runner (posix separators)
    line: int          # 1-based
    col: int           # 0-based, as in the AST
    message: str
    source_line: str = ""   # stripped text of the offending line
    severity: str = "error"  # "error" fails the run; "advisory" reports only

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"

    def as_dict(self) -> Dict[str, object]:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message,
                "source_line": self.source_line, "severity": self.severity}


class ModuleContext:
    """Everything a checker may look at for one module."""

    def __init__(self, source: str, path: str,
                 tree: Optional[ast.Module] = None) -> None:
        self.source = source
        self.path = path.replace("\\", "/")
        self.lines = source.splitlines()
        self.tree = tree if tree is not None else ast.parse(source, path)
        self.package_path = self._derive_package_path(self.path)

    @staticmethod
    def _derive_package_path(path: str) -> Optional[str]:
        """Path inside the ``repro`` package, or None for non-package files.

        ``src/repro/core/worm.py`` → ``repro/core/worm.py``;
        ``tests/core/test_worm.py`` → ``None`` (rules scoped to package
        code skip it).
        """
        parts = path.split("/")
        for index, part in enumerate(parts[:-1]):
            if part == "repro" and (index == 0 or parts[index - 1] != "tests"):
                return "/".join(parts[index:])
        return None

    def in_package(self, prefix: str) -> bool:
        """True when this module lives under *prefix* (``repro/core/``)."""
        return (self.package_path is not None
                and self.package_path.startswith(prefix))

    def is_module(self, package_path: str) -> bool:
        return self.package_path == package_path

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(self, rule: str, node: ast.AST, message: str,
                severity: str = "error") -> Finding:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(rule=rule, path=self.path, line=lineno, col=col,
                       message=message, source_line=self.source_line(lineno),
                       severity=severity)


class Checker:
    """Base class of one wormlint rule.

    Subclasses set :attr:`rule` / :attr:`title` / :attr:`rationale` and
    implement :meth:`check`, yielding :class:`Finding` objects.  A fresh
    checker instance is created per run (checkers may keep per-run
    state), and :meth:`check` is called once per module.

    ``severity`` is the rule's default: ``"error"`` findings fail the
    run, ``"advisory"`` findings are reported but never gate (used by
    the perf-campaign rules).  Checkers that set ``wants_project`` get
    the :class:`~repro.lint.project.ProjectModel` assigned to
    :attr:`project` before :meth:`check` when one is available (project
    mode), and must degrade gracefully when it is None.
    """

    rule: str = "W000"
    title: str = ""
    rationale: str = ""
    severity: str = "error"
    requires_project: bool = False   # project-scope rule: check_project()
    wants_project: bool = False      # module rule that can use the model
    project = None                   # set by the engine in project mode

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError


class ProjectChecker(Checker):
    """A rule that runs once over the whole :class:`ProjectModel`.

    Findings carry the real path of the module they point into, so
    per-line suppressions and the baseline work unchanged.
    """

    requires_project = True

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project) -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: Dict[str, Type[Checker]] = {}


def register(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator adding a checker to the global registry."""
    if not _RULE_RE.match(cls.rule):
        raise ValueError(f"checker rule id {cls.rule!r} must look like W123")
    if cls.rule in _REGISTRY and _REGISTRY[cls.rule] is not cls:
        raise ValueError(f"duplicate checker for rule {cls.rule}")
    _REGISTRY[cls.rule] = cls
    return cls


def all_rules() -> Dict[str, Type[Checker]]:
    """The registry, rule id → checker class (import-populated)."""
    # Ensure the built-in rules registered even when the engine module is
    # imported directly rather than through the package __init__.
    from repro.lint import rules as _rules  # noqa: F401
    from repro.lint import rules_project as _rules_project  # noqa: F401
    return dict(sorted(_REGISTRY.items()))


# ---------------------------------------------------------------- suppression

def _suppressed_rules(line: str) -> frozenset:
    match = _SUPPRESS_RE.search(line)
    if not match:
        return frozenset()
    return frozenset(
        token.strip() for token in match.group(1).split(",") if token.strip())


def apply_suppressions(ctx: ModuleContext,
                       findings: Iterable[Finding]) -> List[Finding]:
    """Drop findings whose source line carries a matching disable comment."""
    kept: List[Finding] = []
    for finding in findings:
        raw = (ctx.lines[finding.line - 1]
               if 1 <= finding.line <= len(ctx.lines) else "")
        if finding.rule in _suppressed_rules(raw):
            continue
        kept.append(finding)
    return kept


def suppression_errors(ctx: ModuleContext) -> List[Finding]:
    """E998 findings for pragmas naming rules that do not exist.

    A typo'd ``wormlint: disable=W0007`` pragma silently suppresses nothing —
    the author believes a finding is sanctioned while the rule id never
    matches.  Unknown ids are therefore hard errors, caught on every
    line (not just lines that currently have findings).
    """
    known = set(all_rules()) | set(_ENGINE_RULES)
    errors: List[Finding] = []
    for lineno, line in enumerate(ctx.lines, start=1):
        for token in _suppressed_rules(line):
            if token not in known:
                errors.append(Finding(
                    rule="E998", path=ctx.path, line=lineno, col=0,
                    message=(f"unknown rule id {token!r} in wormlint "
                             f"suppression comment — known rules: "
                             f"{', '.join(sorted(known))}"),
                    source_line=ctx.source_line(lineno)))
    return errors


# -------------------------------------------------------------------- running

@dataclass
class LintResult:
    """Outcome of one lint run, pre/post baseline subtraction."""

    findings: List[Finding] = field(default_factory=list)  # new (not baselined)
    advisories: List[Finding] = field(default_factory=list)  # never gate
    baselined: int = 0        # findings matched by the baseline
    stale_baseline: List[str] = field(default_factory=list)  # fixed entries
    files_checked: int = 0
    parse_errors: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings


def _selected_checkers(select: Optional[Sequence[str]]) -> List[Checker]:
    registry = all_rules()
    if select:
        unknown = [rule for rule in select if rule not in registry]
        if unknown:
            raise ValueError(f"unknown rule(s): {', '.join(unknown)}")
        return [registry[rule]() for rule in select]
    return [cls() for cls in registry.values()]


def lint_module(ctx: ModuleContext,
                select: Optional[Sequence[str]] = None,
                checkers: Optional[List[Checker]] = None) -> List[Finding]:
    """All non-suppressed findings for one parsed module."""
    if checkers is None:
        checkers = [c for c in _selected_checkers(select)
                    if not c.requires_project]
    findings: List[Finding] = []
    for checker in checkers:
        findings.extend(checker.check(ctx))
    findings.extend(suppression_errors(ctx))
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return apply_suppressions(ctx, findings)


def lint_source(source: str, virtual_path: str,
                select: Optional[Sequence[str]] = None) -> List[Finding]:
    """Lint a source string as if it lived at *virtual_path*.

    The fixture entry point: ``virtual_path`` controls the package-path
    scoping exactly as a real file's location would.
    """
    return lint_module(ModuleContext(source, virtual_path), select=select)


def lint_project_sources(sources: Dict[str, str],
                         select: Optional[Sequence[str]] = None
                         ) -> List[Finding]:
    """Lint a virtual multi-module project (the interprocedural fixture
    entry point): ``{virtual_path: source}`` becomes a
    :class:`~repro.lint.project.ProjectModel`, and both module-scope and
    project-scope checkers run over it.  Returns every non-suppressed
    finding (advisories included), sorted by path/line.
    """
    from repro.lint.project import ProjectModel  # local: import cycle

    contexts = {path: ModuleContext(src, path)
                for path, src in sources.items()}
    project = ProjectModel(contexts.values())
    checkers = _selected_checkers(select)
    findings: List[Finding] = []
    for checker in checkers:
        if checker.wants_project:
            checker.project = project
    for path, ctx in sorted(contexts.items()):
        module_checkers = [c for c in checkers if not c.requires_project]
        findings.extend(lint_module(ctx, checkers=module_checkers))
    for checker in checkers:
        if not checker.requires_project:
            continue
        raw = list(checker.check_project(project))
        by_path: Dict[str, List[Finding]] = {}
        for finding in raw:
            by_path.setdefault(finding.path, []).append(finding)
        for path, group in by_path.items():
            ctx = contexts.get(path)
            findings.extend(apply_suppressions(ctx, group)
                            if ctx is not None else group)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    seen = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            key = candidate.resolve()
            if key in seen:
                continue
            seen.add(key)
            yield candidate


def _parse_contexts(paths: Sequence[str], result: LintResult,
                    collected: List[Finding]) -> Dict[str, ModuleContext]:
    """Parse every python file under *paths*; E999 the unparsable ones."""
    contexts: Dict[str, ModuleContext] = {}
    for path in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            collected.append(Finding(
                rule="E999", path=str(path), line=1, col=0,
                message=f"unreadable file: {exc}"))
            result.parse_errors += 1
            continue
        try:
            ctx = ModuleContext(source, str(path))
        except SyntaxError as exc:
            collected.append(Finding(
                rule="E999", path=str(path), line=exc.lineno or 1, col=0,
                message=f"syntax error: {exc.msg}"))
            result.parse_errors += 1
            continue
        result.files_checked += 1
        contexts[ctx.path] = ctx
    return contexts


def lint_paths(paths: Sequence[str],
               select: Optional[Sequence[str]] = None,
               baseline: Optional["Baseline"] = None,
               project: bool = False) -> LintResult:
    """Lint files/directories; subtract *baseline* when given.

    With ``project=True`` the package modules among *paths* are parsed
    into one :class:`~repro.lint.project.ProjectModel` and the
    interprocedural rules (W007–W009) run over it; module-scope rules
    that declare ``wants_project`` get the model too (W002's re-export
    resolution).  Advisory-severity findings land in
    :attr:`LintResult.advisories` and never fail the run.
    """
    from repro.lint.baseline import Baseline  # local: avoid import cycle

    result = LintResult()
    collected: List[Finding] = []
    contexts = _parse_contexts(paths, result, collected)

    checkers = _selected_checkers(select)
    model = None
    if project:
        from repro.lint.project import ProjectModel
        model = ProjectModel(contexts.values())
        for checker in checkers:
            if checker.wants_project:
                checker.project = model
    module_checkers = [c for c in checkers if not c.requires_project]
    for _, ctx in sorted(contexts.items()):
        collected.extend(lint_module(ctx, checkers=module_checkers))
    if model is not None:
        for checker in checkers:
            if not checker.requires_project:
                continue
            by_path: Dict[str, List[Finding]] = {}
            for finding in checker.check_project(model):
                by_path.setdefault(finding.path, []).append(finding)
            for path, group in by_path.items():
                ctx = contexts.get(path)
                collected.extend(apply_suppressions(ctx, group)
                                 if ctx is not None else group)

    errors = [f for f in collected if f.severity == "error"]
    result.advisories = sorted(
        (f for f in collected if f.severity != "error"),
        key=lambda f: (f.path, f.line, f.col, f.rule))
    if baseline is None:
        baseline = Baseline.empty()
    fresh, matched, stale = baseline.partition(errors)
    result.findings = fresh
    result.baselined = matched
    result.stale_baseline = stale
    return result
