"""Diff-aware linting: restrict findings to lines changed since a ref.

Incremental CI wants "did *this change* introduce a violation", not a
re-litigation of the whole tree on every push.  :func:`changed_lines`
shells out to ``git diff -U0 <ref>`` and parses the hunk headers into a
``{path: {line, ...}}`` map of added/modified lines in the working
tree; :func:`filter_findings` keeps only findings on those lines.

Two deliberate asymmetries:

* **Project-scope findings are kept when either end moved.**  A W007
  can appear because the *sink* file changed or because a *sanitizer
  two modules away* was deleted — in diff mode, any finding in a
  changed file is kept even off the changed lines, because the taint
  chain that produced it is not a per-line property.  Per-file rules
  (W001–W006, E99x) filter strictly by line.
* **The full run stays authoritative.** ``--diff`` is a fast gate for
  the inner loop; check.sh still runs the complete project lint.
"""

from __future__ import annotations

import re
import subprocess
from typing import Dict, Iterable, List, Set

from repro.lint.engine import Finding

__all__ = ["changed_lines", "filter_findings", "merge_base"]

#: Rules whose findings depend on more than their own line (the
#: interprocedural set): kept for any finding in a touched file.
_PROJECT_RULES = frozenset({"W007", "W008", "W009"})

_HUNK_RE = re.compile(r"^@@ -\d+(?:,\d+)? \+(\d+)(?:,(\d+))? @@")


def _git(args: List[str]) -> str:
    proc = subprocess.run(["git", *args], capture_output=True, text=True)
    if proc.returncode != 0:
        raise ValueError(
            f"git {' '.join(args)} failed: {proc.stderr.strip()}")
    return proc.stdout


def merge_base(ref: str) -> str:
    """The merge base of HEAD and *ref* (what CI diffs against)."""
    return _git(["merge-base", "HEAD", ref]).strip()


def changed_lines(ref: str) -> Dict[str, Set[int]]:
    """Added/modified line numbers per file, working tree vs *ref*.

    Paths are repo-relative with posix separators, matching the paths
    wormlint reports when run from the repo root.
    """
    output = _git(["diff", "-U0", "--no-color", ref, "--", "*.py"])
    changes: Dict[str, Set[int]] = {}
    current: Set[int] = set()
    for line in output.splitlines():
        if line.startswith("+++ "):
            target = line[4:].strip()
            if target == "/dev/null":      # deletion: nothing to lint
                current = set()
                continue
            if target.startswith("b/"):
                target = target[2:]
            current = changes.setdefault(target.replace("\\", "/"), set())
            continue
        match = _HUNK_RE.match(line)
        if match:
            start = int(match.group(1))
            count = int(match.group(2)) if match.group(2) is not None else 1
            current.update(range(start, start + count))
    return {path: lines for path, lines in changes.items() if lines}


def filter_findings(findings: Iterable[Finding],
                    changes: Dict[str, Set[int]]) -> List[Finding]:
    """Findings that land on changed lines (or changed files, for the
    interprocedural rules — see the module docstring)."""
    kept: List[Finding] = []
    for finding in findings:
        lines = changes.get(finding.path)
        if lines is None:
            continue
        if finding.rule in _PROJECT_RULES or finding.line in lines:
            kept.append(finding)
    return kept
