"""Finding reporters: human text and machine JSON."""

from __future__ import annotations

import json
from typing import List

from repro.lint.engine import Finding, LintResult

__all__ = ["render_text", "render_json"]


def _sorted(findings: List[Finding]) -> List[Finding]:
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))


def render_text(result: LintResult, verbose: bool = True) -> str:
    """ruff-style one-line-per-finding text, plus a summary."""
    lines: List[str] = []
    for finding in _sorted(result.findings):
        lines.append(f"{finding.location()}: {finding.rule} {finding.message}")
        if verbose and finding.source_line:
            lines.append(f"    | {finding.source_line}")
    if result.stale_baseline:
        lines.append("")
        lines.append("stale baseline entries (fixed — prune them with "
                     "--write-baseline):")
        for label in result.stale_baseline:
            lines.append(f"  - {label}")
    lines.append("")
    status = "clean" if result.clean else f"{len(result.findings)} finding(s)"
    lines.append(
        f"wormlint: {status} across {result.files_checked} file(s)"
        + (f", {result.baselined} grandfathered" if result.baselined else "")
        + (f", {result.parse_errors} unparsable" if result.parse_errors else ""))
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    payload = {
        "findings": [f.as_dict() for f in _sorted(result.findings)],
        "summary": {
            "files_checked": result.files_checked,
            "new_findings": len(result.findings),
            "baselined": result.baselined,
            "stale_baseline": list(result.stale_baseline),
            "parse_errors": result.parse_errors,
            "clean": result.clean,
        },
    }
    return json.dumps(payload, indent=2)
