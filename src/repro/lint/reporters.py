"""Finding reporters: human text, machine JSON, and SARIF 2.1.0.

SARIF (Static Analysis Results Interchange Format) is the lingua franca
CI forges ingest for inline annotations; :func:`render_sarif` emits the
minimal conforming document — one run, one driver, a ``rules`` entry per
registered checker, one ``result`` per finding.  Advisory findings map
to SARIF level ``note`` (surfaced, never blocking), errors to ``error``,
mirroring wormlint's own gating.  The committed subset schema at
``scripts/sarif_schema.json`` locks the shape in CI via
:mod:`repro.obs.schema` (no third-party validator in the container).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.lint.engine import Finding, LintResult, all_rules

__all__ = ["render_text", "render_json", "render_sarif"]

#: The canonical SARIF 2.1.0 schema URI (informational in the document).
SARIF_SCHEMA_URI = ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")
SARIF_VERSION = "2.1.0"


def _sorted(findings: List[Finding]) -> List[Finding]:
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))


def render_text(result: LintResult, verbose: bool = True) -> str:
    """ruff-style one-line-per-finding text, plus a summary."""
    lines: List[str] = []
    for finding in _sorted(result.findings):
        lines.append(f"{finding.location()}: {finding.rule} {finding.message}")
        if verbose and finding.source_line:
            lines.append(f"    | {finding.source_line}")
    if result.advisories:
        lines.append("")
        lines.append(f"advisories ({len(result.advisories)} — reported, "
                     "never gate):")
        for finding in _sorted(result.advisories):
            lines.append(
                f"  {finding.location()}: {finding.rule} {finding.message}")
    if result.stale_baseline:
        lines.append("")
        lines.append("stale baseline entries (fixed — prune them with "
                     "--prune-baseline):")
        for label in result.stale_baseline:
            lines.append(f"  - {label}")
    lines.append("")
    status = "clean" if result.clean else f"{len(result.findings)} finding(s)"
    lines.append(
        f"wormlint: {status} across {result.files_checked} file(s)"
        + (f", {result.baselined} grandfathered" if result.baselined else "")
        + (f", {len(result.advisories)} advisory" if result.advisories else "")
        + (f", {result.parse_errors} unparsable" if result.parse_errors else ""))
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    payload = {
        "findings": [f.as_dict() for f in _sorted(result.findings)],
        "advisories": [f.as_dict() for f in _sorted(result.advisories)],
        "summary": {
            "files_checked": result.files_checked,
            "new_findings": len(result.findings),
            "advisories": len(result.advisories),
            "baselined": result.baselined,
            "stale_baseline": list(result.stale_baseline),
            "parse_errors": result.parse_errors,
            "clean": result.clean,
        },
    }
    return json.dumps(payload, indent=2)


# ------------------------------------------------------------------- SARIF

def _sarif_rules() -> List[Dict[str, object]]:
    rules: List[Dict[str, object]] = []
    for rule_id, cls in all_rules().items():
        rules.append({
            "id": rule_id,
            "name": cls.title or rule_id,
            "shortDescription": {"text": cls.title or rule_id},
            "fullDescription": {"text": cls.rationale or cls.title or rule_id},
            "defaultConfiguration": {
                "level": "note" if cls.severity == "advisory" else "error",
            },
        })
    return rules


def _sarif_result(finding: Finding) -> Dict[str, object]:
    return {
        "ruleId": finding.rule,
        "level": "note" if finding.severity == "advisory" else "error",
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": finding.path},
                "region": {
                    "startLine": finding.line,
                    "startColumn": finding.col + 1,
                },
            },
        }],
    }


def render_sarif(result: LintResult,
                 tool_version: Optional[str] = None) -> str:
    """The full run as a SARIF 2.1.0 log (findings + advisories)."""
    results = [_sarif_result(f) for f in _sorted(result.findings)]
    results += [_sarif_result(f) for f in _sorted(result.advisories)]
    document = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "wormlint",
                    "version": tool_version or "2.0",
                    "rules": _sarif_rules(),
                },
            },
            "results": results,
        }],
    }
    return json.dumps(document, indent=2)
