"""Grandfathered-finding baseline: new violations fail, old ones don't.

A baseline entry identifies a finding by ``(rule, path, source-line
text)`` plus a count, *not* by line number — editing an unrelated part of
a file must not resurrect its grandfathered findings, and a fingerprint
on the offending line's text survives such drift.  Duplicates of the
same line text in one file are handled by the count: three identical
``raise KeyError(...)`` lines baseline as ``count: 3``, and adding a
fourth is a *new* finding.

The committed file lives at the repo root as ``wormlint.baseline.json``;
regenerate it with ``python -m repro.lint --write-baseline`` (a
deliberate act that should be visible in review, never automatic).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from repro.lint.engine import Finding

__all__ = ["Baseline", "DEFAULT_BASELINE_NAME"]

DEFAULT_BASELINE_NAME = "wormlint.baseline.json"

_Key = Tuple[str, str, str]  # (rule, path, normalized source line)


def _key(finding: Finding) -> _Key:
    return (finding.rule, finding.path, " ".join(finding.source_line.split()))


class Baseline:
    """A multiset of grandfathered findings."""

    def __init__(self, counts: Dict[_Key, int]) -> None:
        self._counts = dict(counts)

    # -- construction -------------------------------------------------------

    @classmethod
    def empty(cls) -> "Baseline":
        return cls({})

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        counts: Dict[_Key, int] = {}
        for finding in findings:
            key = _key(finding)
            counts[key] = counts.get(key, 0) + 1
        return cls(counts)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise ValueError(f"unreadable baseline {path}: {exc}") from exc
        return cls.loads(text, str(path))

    @classmethod
    def loads(cls, text: str, label: str = "<baseline>") -> "Baseline":
        """Parse baseline JSON from a string (e.g. ``git show`` output)."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"unreadable baseline {label}: {exc}") from exc
        if not isinstance(data, dict) or data.get("version") != 1:
            raise ValueError(f"baseline {label} is not a version-1 baseline")
        counts: Dict[_Key, int] = {}
        for entry in data.get("findings", []):
            key = (entry["rule"], entry["path"], entry["content"])
            counts[key] = counts.get(key, 0) + int(entry.get("count", 1))
        return cls(counts)

    def dump(self, path: Path) -> None:
        entries = [
            {"rule": rule, "path": file_path, "content": content,
             "count": count}
            for (rule, file_path, content), count in sorted(self._counts.items())
            if count > 0
        ]
        payload = {
            "version": 1,
            "comment": ("wormlint grandfathered findings — shrink me, never "
                        "grow me.  Regenerate deliberately with "
                        "`python -m repro.lint --write-baseline`."),
            "findings": entries,
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    # -- maintenance --------------------------------------------------------

    def pruned_to(self, findings: Iterable[Finding]
                  ) -> Tuple["Baseline", List[str]]:
        """The baseline with stale entries dropped, plus their labels.

        An entry survives only up to the number of times it still occurs
        in *findings*; keys are never added and counts never grow — the
        baseline may only shrink (``--prune-baseline``).
        """
        current: Dict[_Key, int] = {}
        for finding in findings:
            key = _key(finding)
            current[key] = current.get(key, 0) + 1
        kept: Dict[_Key, int] = {}
        dropped: List[str] = []
        for key, count in sorted(self._counts.items()):
            keep = min(count, current.get(key, 0))
            if keep:
                kept[key] = keep
            if keep < count:
                rule, path, content = key
                dropped.append(f"{rule} {path}: {content!r} "
                               f"(x{count - keep})")
        return Baseline(kept), dropped

    def growth_since(self, old: "Baseline") -> List[str]:
        """Entries of *self* that exceed *old* — the gate against a
        quietly growing grandfather file (empty list = no growth)."""
        grown: List[str] = []
        for key, count in sorted(self._counts.items()):
            extra = count - old._counts.get(key, 0)
            if extra > 0:
                rule, path, content = key
                grown.append(f"{rule} {path}: {content!r} (+{extra})")
        return grown

    # -- matching -----------------------------------------------------------

    def __len__(self) -> int:
        return sum(self._counts.values())

    def partition(self, findings: Iterable[Finding]
                  ) -> Tuple[List[Finding], int, List[str]]:
        """Split findings into (new, matched-count, stale-entry labels).

        Stale entries are grandfathered findings that no longer occur —
        they should be pruned from the committed file (the baseline only
        ever shrinks).
        """
        remaining = dict(self._counts)
        fresh: List[Finding] = []
        matched = 0
        for finding in findings:
            key = _key(finding)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                matched += 1
            else:
                fresh.append(finding)
        stale = [
            f"{rule} {path}: {content!r} (x{count})"
            for (rule, path, content), count in sorted(remaining.items())
            if count > 0
        ]
        return fresh, matched, stale
