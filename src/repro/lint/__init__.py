"""wormlint — AST-based compliance-invariant checking for this tree.

Strong WORM's security argument rests on invariants the type system
cannot see: the SCPU is a separate trust domain (PAPER.md §3), results
must be reproducible in *virtual* time, tamper trips are terminal, and a
weak burst construct must never escape without strengthening (§4.3).
PR 2 fixed three silent violations of exactly these rules; ``wormlint``
turns each rule class into a static check so the *next* violation fails
``make check`` instead of shipping.

Run it over the tree::

    python -m repro.lint src tests              # per-file rules
    python -m repro.lint --project src tests    # + interprocedural rules

Rules (see :mod:`repro.lint.rules` and :mod:`repro.lint.rules_project`
for the full semantics):

========  =============================================================
W001      trust-domain: no SCPU/key-store private internals outside
          ``repro.hardware`` — host code programs against ``ScpuLike``
W002      virtual-time: no wall-clock reads outside ``repro.sim.clock``
W003      retry-boundary: ``repro.core`` reaches the SCPU / block store
          only through the ``repro.core.retry`` wrappers
W004      tamper-terminal: no handler may swallow ``TamperedError``
W005      taxonomy: raises are ``WormError``-rooted (or stdlib
          ``ValueError``/``TypeError`` on argument validation)
W006      no-laundering: weak-capable witnessing must feed the
          strengthening queue before results escape ``repro.core``
W007      verify-before-trust: untrusted host-side data must pass a
          verifier on *every* path before a trust sink (interprocedural
          taint analysis — :mod:`repro.lint.dataflow`)
W008      tamper-terminal-transitive: W004 with call-graph reachability —
          no transitive caller may swallow ``TamperedError``
W009      scpu-in-loop (advisory): call-graph-transitive SCPU round-trips
          inside per-record loops (the hot-path perf campaign)
========  =============================================================

The interprocedural rules run over a whole-program
:class:`~repro.lint.project.ProjectModel` (symbol table + call graph).
Findings are suppressed per line with ``wormlint: disable=W00x`` and
grandfathered via the committed ``wormlint.baseline.json`` (see
:mod:`repro.lint.baseline`); anything new fails the run.  Reports are
available as text, JSON, and SARIF 2.1.0 (``--format sarif``), and
``--diff REF`` restricts findings to lines changed since the merge base
for incremental CI.
"""

from __future__ import annotations

from repro.lint.baseline import Baseline
from repro.lint.engine import (
    Checker,
    Finding,
    LintResult,
    ModuleContext,
    ProjectChecker,
    all_rules,
    lint_paths,
    lint_project_sources,
    lint_source,
    register,
)
from repro.lint.project import ProjectModel

# Importing the rule modules populates the registry as a side effect.
from repro.lint import rules as _rules  # noqa: F401  (registration import)
from repro.lint import rules_project as _rules_project  # noqa: F401

__all__ = [
    "Baseline",
    "Checker",
    "Finding",
    "LintResult",
    "ModuleContext",
    "ProjectChecker",
    "ProjectModel",
    "all_rules",
    "lint_paths",
    "lint_project_sources",
    "lint_source",
    "register",
]
