"""The six wormlint domain rules (W001–W006).

Each rule encodes one invariant from the paper's security argument that
Python's type system cannot enforce.  The checkers are syntactic — they
reason about names and shapes, not values — so each rule documents the
*naming conventions* it leans on; code that steps outside a convention
for a sanctioned reason carries a ``wormlint: disable=W00x`` comment
explaining why, which is exactly the audit trail we want.

Conventions the rules rely on:

* the raw SCPU device is always reachable as a ``scpu`` attribute or
  local (``store.scpu``, ``self.scpu``); retry-wrapped views live in
  underscore-prefixed slots (``_scpu_rt``, ``_scpu``) — see
  :class:`~repro.core.retry.RetryingScpu`;
* the untrusted block store is a ``blocks`` / ``block_store`` attribute;
* the strengthening queue is a ``strengthening`` attribute with an
  ``enqueue`` method.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.lint.engine import Checker, Finding, ModuleContext, register

__all__ = [
    "TrustDomainChecker",
    "VirtualTimeChecker",
    "RetryBoundaryChecker",
    "TamperTerminalChecker",
    "TaxonomyChecker",
    "LaunderingChecker",
]


# ---------------------------------------------------------------- AST helpers

def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, None for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def terminal_name(node: ast.AST) -> Optional[str]:
    """The last segment of a Name/Attribute chain (``c`` of ``a.b.c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _exception_names(handler_type: Optional[ast.AST]) -> List[str]:
    """Terminal class names an ``except`` clause catches ([] = bare)."""
    if handler_type is None:
        return []
    nodes = (handler_type.elts if isinstance(handler_type, ast.Tuple)
             else [handler_type])
    names = []
    for node in nodes:
        name = terminal_name(node)
        if name is not None:
            names.append(name)
    return names


# --------------------------------------------------------- W001 trust domain

#: Receiver names that denote the SCPU trust domain or its key store.
#: ``scpu`` is the raw device by convention; the wrapped views are
#: included because reaching *their* privates launders the same boundary.
_SCPU_RECEIVERS = frozenset(
    {"scpu", "_scpu", "scpu_rt", "_scpu_rt", "keyring", "keystore"})

#: Enclosure-only accumulator machinery: the class that carries the
#: factorisation trapdoor, and the attribute the trapdoor lives in.
#: Referencing either outside the enclosure (or the primitive's home
#: module) means host code could compute witnesses without the card —
#: the exact capability the accumulator scheme's trust story forbids.
_TRAPDOOR_NAMES = frozenset({"TrapdoorAccumulator"})
_TRAPDOOR_ATTRS = frozenset({"_phi"})
_TRAPDOOR_HOME_MODULE = "repro/crypto/accumulator.py"


@register
class TrustDomainChecker(Checker):
    """W001: SCPU internals stay inside ``repro.hardware``.

    The SCPU is a separate *trust domain* (PAPER.md §3): host-side code
    that reads a card's private state — key material, serial counters,
    the tamper latch's internals — is modelling an attack, not an API.
    Outside ``repro.hardware``, every SCPU interaction goes through the
    :class:`~repro.hardware.device.ScpuLike` service surface; private
    attribute access on an SCPU-typed receiver is flagged.

    The same boundary confines the RSA-accumulator trapdoor: any
    reference to :class:`~repro.crypto.accumulator.TrapdoorAccumulator`
    (or its ``_phi`` trapdoor attribute) outside ``repro.hardware`` and
    the primitive's home module is flagged — host-side code must use the
    trapdoor-free surface (``hash_to_prime``, ``verify_membership``,
    ``WitnessDirectory``) and reach the trapdoor only through the
    ``accumulator_*`` ScpuLike service calls.
    """

    rule = "W001"
    title = "trust-domain"
    rationale = ("host code must not reach into SCPU/key-store internals "
                 "or the accumulator trapdoor; program against the "
                 "ScpuLike surface")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.in_package("repro/hardware/"):
            return
        trapdoor_ok = ctx.is_module(_TRAPDOOR_HOME_MODULE)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and not trapdoor_ok:
                for alias in node.names:
                    if alias.name in _TRAPDOOR_NAMES:
                        yield ctx.finding(
                            self.rule, node,
                            f"import of '{alias.name}' outside "
                            "repro.hardware — the accumulator trapdoor "
                            "lives inside the enclosure; use the "
                            "accumulator_* ScpuLike service calls or the "
                            "trapdoor-free directory/verification surface")
                continue
            if isinstance(node, ast.Name) and not trapdoor_ok:
                if node.id in _TRAPDOOR_NAMES:
                    yield ctx.finding(
                        self.rule, node,
                        f"reference to '{node.id}' outside repro.hardware — "
                        "the accumulator trapdoor lives inside the "
                        "enclosure; use the accumulator_* ScpuLike service "
                        "calls or the trapdoor-free surface")
                continue
            if not isinstance(node, ast.Attribute):
                continue
            attr = node.attr
            if not trapdoor_ok and (attr in _TRAPDOOR_NAMES
                                    or attr in _TRAPDOOR_ATTRS):
                yield ctx.finding(
                    self.rule, node,
                    f"access to accumulator-trapdoor internal '.{attr}' "
                    "outside repro.hardware — the trapdoor never leaves "
                    "the enclosure")
                continue
            if not attr.startswith("_") or attr.startswith("__"):
                continue
            receiver = terminal_name(node.value)
            if receiver in _SCPU_RECEIVERS:
                yield ctx.finding(
                    self.rule, node,
                    f"access to SCPU/key-store internal '{receiver}.{attr}' "
                    "outside repro.hardware — use the ScpuLike service "
                    "surface (the SCPU is a separate trust domain)")


# --------------------------------------------------------- W002 virtual time

#: time-module functions that read the wall clock.
_TIME_CLOCK_FUNCS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns", "sleep",
})
#: time-module functions that read the clock only when called with no
#: argument (``time.ctime()`` vs the deterministic ``time.ctime(stamp)``).
_TIME_IMPLICIT_FUNCS = frozenset({"ctime", "localtime", "gmtime", "asctime",
                                  "strftime"})
#: datetime constructors that read the wall clock.
_DATETIME_NOW_FUNCS = frozenset({"now", "utcnow", "today"})

#: The only modules allowed to touch the wall clock: the clock sources
#: themselves (SystemClock for the CLI's persistent stores, the SCPU's
#: battery-backed clock is modelled there too).
_W002_ALLOWED = frozenset({"repro/sim/clock.py"})


@register
class VirtualTimeChecker(Checker):
    """W002: results are reproducible in *virtual* time.

    Every throughput figure and every retention/freshness decision in
    this reproduction is defined in virtual time so runs are
    deterministic (PAPER.md §5 measures in modelled device time).  A
    stray ``time.time()`` makes a signature timestamp, report, or
    backoff depend on the machine running the tests.  Only the clock
    sources in ``repro.sim.clock`` may read the wall clock; everything
    else takes a clock object.
    """

    rule = "W002"
    title = "virtual-time"
    rationale = ("wall-clock reads outside repro.sim.clock break "
                 "run-to-run determinism; thread the virtual clock")
    wants_project = True   # resolves cross-module re-exports when available

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.package_path in _W002_ALLOWED:
            return
        time_aliases, datetime_aliases, from_imports = self._imports(ctx.tree)
        resolver = self._project_resolver(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            finding = self._check_call(ctx, node, time_aliases,
                                       datetime_aliases, from_imports)
            if finding is None and resolver is not None:
                finding = self._check_resolved_call(ctx, node, resolver)
            if finding is not None:
                yield finding

    @staticmethod
    def _imports(tree: ast.Module) -> Tuple[Set[str], Set[str], Set[str]]:
        time_aliases: Set[str] = set()
        datetime_aliases: Set[str] = set()
        from_imports: Set[str] = set()   # bare names bound to clock readers
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        time_aliases.add(alias.asname or "time")
                    elif alias.name == "datetime":
                        datetime_aliases.add(alias.asname or "datetime")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in _TIME_CLOCK_FUNCS:
                            from_imports.add(alias.asname or alias.name)
                elif node.module == "datetime":
                    for alias in node.names:
                        if alias.name == "datetime":
                            datetime_aliases.add(alias.asname or alias.name)
        # Assignment aliases: ``clock = time`` / ``now = time.time`` re-bind
        # the wall clock under a new name without any import to spot.
        # Top-level statement order is respected so chained aliases
        # (``t = time`` then ``now = t.time``) resolve too.
        for node in tree.body:
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)):
                continue
            target = node.targets[0].id
            value = dotted_name(node.value)
            if value is None:
                continue
            head, _, attr = value.partition(".")
            if not attr and head in time_aliases:
                time_aliases.add(target)
            elif not attr and head in datetime_aliases:
                datetime_aliases.add(target)
            elif not attr and head in from_imports:
                from_imports.add(target)
            elif attr and head in time_aliases and attr in _TIME_CLOCK_FUNCS:
                from_imports.add(target)
        return time_aliases, datetime_aliases, from_imports

    def _project_resolver(self, ctx: ModuleContext):
        """Symbol resolution through the ProjectModel, in project mode.

        Catches the cross-module form of alias blindness: a helper module
        re-exporting ``now = time.time`` (or ``from time import time as
        now``) and a consumer importing *that* — neither file alone shows
        a time import plus a call.
        """
        if self.project is None or ctx.package_path is None:
            return None
        from repro.lint.project import module_name_for
        module = module_name_for(ctx.package_path)
        if module not in self.project.symbols:
            return None
        return lambda dotted: self.project.resolve(module, dotted)

    def _check_resolved_call(self, ctx: ModuleContext, node: ast.Call,
                             resolver) -> Optional[Finding]:
        chain = dotted_name(node.func)
        if chain is None:
            return None
        resolved = resolver(chain)
        if resolved is None or resolved == chain:
            return None
        parts = resolved.split(".")
        if parts[0] == "time" and len(parts) == 2 \
                and parts[1] in _TIME_CLOCK_FUNCS:
            return ctx.finding(
                self.rule, node,
                f"wall-clock call '{chain}()' resolves to '{resolved}' — "
                "take the virtual clock instead (only repro.sim.clock "
                "reads real time)")
        if parts[0] == "datetime" and parts[-1] in _DATETIME_NOW_FUNCS:
            return ctx.finding(
                self.rule, node,
                f"wall-clock call '{chain}()' resolves to '{resolved}' — "
                "take the virtual clock instead")
        return None

    def _check_call(self, ctx: ModuleContext, node: ast.Call,
                    time_aliases: Set[str], datetime_aliases: Set[str],
                    from_imports: Set[str]) -> Optional[Finding]:
        func = node.func
        if isinstance(func, ast.Name) and func.id in from_imports:
            return ctx.finding(
                self.rule, node,
                f"wall-clock call '{func.id}()' — take the virtual clock "
                "instead (only repro.sim.clock reads real time)")
        if not isinstance(func, ast.Attribute):
            return None
        receiver = terminal_name(func.value)
        root = dotted_name(func.value)
        if receiver in time_aliases and root == receiver:
            if func.attr in _TIME_CLOCK_FUNCS:
                return ctx.finding(
                    self.rule, node,
                    f"wall-clock call '{receiver}.{func.attr}()' — take the "
                    "virtual clock instead (only repro.sim.clock reads "
                    "real time)")
            if (func.attr in _TIME_IMPLICIT_FUNCS
                    and not node.args and not node.keywords):
                return ctx.finding(
                    self.rule, node,
                    f"'{receiver}.{func.attr}()' with no argument reads the "
                    "wall clock — pass an explicit timestamp")
        if func.attr in _DATETIME_NOW_FUNCS:
            # datetime.now() / datetime.datetime.now() / dt.utcnow() …
            chain = dotted_name(func.value)
            if chain is not None and (
                    chain.split(".")[0] in datetime_aliases
                    or chain in datetime_aliases):
                return ctx.finding(
                    self.rule, node,
                    f"wall-clock call '{chain}.{func.attr}()' — take the "
                    "virtual clock instead")
        return None


# ------------------------------------------------------- W003 retry boundary

def _faultable_ops() -> Tuple[frozenset, frozenset]:
    """The SCPU / block-store service surfaces worth retrying.

    Imported from :mod:`repro.faults.wrappers` so the lint rule and the
    fault-injection harness can never disagree about what the
    trust-boundary surface *is*.
    """
    from repro.faults.wrappers import BLOCK_FAULTABLE_OPS, SCPU_FAULTABLE_OPS
    return frozenset(SCPU_FAULTABLE_OPS), frozenset(BLOCK_FAULTABLE_OPS)


_BLOCK_RECEIVERS = frozenset({"blocks", "block_store"})


@register
class RetryBoundaryChecker(Checker):
    """W003: ``repro.core`` reaches devices through the retry layer.

    The SCPU is a card on a bus and the block store is remote media —
    requests get dropped.  PR 2 routed every trust-boundary call in the
    store through :class:`~repro.core.retry.RetryExecutor` so transient
    faults are retried with virtual-time backoff and tamper trips
    escalate exactly once.  A *raw* service call (``x.scpu.op(...)`` or
    ``x.blocks.op(...)``) inside ``repro.core`` dodges that policy: one
    bus glitch becomes a user-visible failure, and retry statistics lie.
    """

    rule = "W003"
    title = "retry-boundary"
    rationale = ("SCPU/block-store service calls in repro.core must go "
                 "through repro.core.retry (RetryingScpu / retry.call)")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_package("repro/core/"):
            return
        if ctx.is_module("repro/core/retry.py"):
            return  # the wrapper itself
        scpu_ops, block_ops = _faultable_ops()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            receiver = terminal_name(func.value)
            if receiver == "scpu" and func.attr in scpu_ops:
                yield ctx.finding(
                    self.rule, node,
                    f"raw SCPU service call '.scpu.{func.attr}(...)' in "
                    "repro.core — route it through the RetryingScpu view "
                    "(store.scpu_rt) or retry.call(...)")
            elif receiver in _BLOCK_RECEIVERS and func.attr in block_ops:
                yield ctx.finding(
                    self.rule, node,
                    f"raw block-store call '.{receiver}.{func.attr}(...)' in "
                    "repro.core — route it through retry.call("
                    f"\"block_store.{func.attr}\", ...)")


# ------------------------------------------------------ W004 tamper terminal

#: Exception classes whose handlers can absorb a TamperedError.
#: WormError is TamperedError's base, so catching it is just as broad.
_BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException", "WormError"})


@register
class TamperTerminalChecker(Checker):
    """W004: tamper trips are terminal — no handler may swallow them.

    A zeroized card yields nothing, ever (the paper's fail-safe): code
    that catches :class:`~repro.core.errors.TamperedError` and carries
    on converts "the enclosure was breached" into a silent retry or a
    cosmetic warning.  Flagged:

    * an ``except`` naming ``TamperedError`` whose body does not
      re-raise;
    * a broad handler (bare ``except``, ``Exception``, ``BaseException``
      or ``WormError`` — the tamper error's own base) in package code,
      unless an earlier arm of the same ``try`` already catches
      ``TamperedError`` and re-raises, or the broad body re-raises.

    Sanctioned degraded-mode sites (the window manager's last-observed
    mirror, circuit-breaker bookkeeping) carry explicit suppressions —
    the point is that absorbing a tamper trip is *visible*, not easy.
    """

    rule = "W004"
    title = "tamper-terminal"
    rationale = ("TamperedError must escalate; catching it (incl. via "
                 "bare/Exception/WormError handlers) hides a breach")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        in_package = ctx.package_path is not None
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Try):
                continue
            yield from self._check_try(ctx, node, in_package)

    def _check_try(self, ctx: ModuleContext, node: ast.Try,
                   in_package: bool) -> Iterator[Finding]:
        tamper_escalated = False
        for handler in node.handlers:
            names = _exception_names(handler.type)
            catches_tamper = "TamperedError" in names
            is_broad = (handler.type is None
                        or bool(_BROAD_EXCEPTIONS.intersection(names)))
            if catches_tamper:
                if self._reraises(handler):
                    tamper_escalated = True
                else:
                    yield ctx.finding(
                        self.rule, handler,
                        "handler catches TamperedError without re-raising — "
                        "tamper trips are terminal (a zeroized card never "
                        "serves again); escalate, don't absorb")
                continue
            if is_broad and in_package and not tamper_escalated:
                if self._reraises(handler):
                    tamper_escalated = True
                    continue
                caught = " / ".join(names) if names else "everything"
                yield ctx.finding(
                    self.rule, handler,
                    f"broad handler ({caught}) can swallow TamperedError — "
                    "add `except TamperedError: raise` before it, or "
                    "re-raise tamper trips inside")

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        """Does the handler body (re-)raise unconditionally enough?

        Accepts a bare ``raise``, re-raising the bound name, or raising a
        (fresh) ``TamperedError`` anywhere in the handler body, including
        inside an ``if`` — a guarded ``if isinstance(exc, TamperedError):
        raise`` is the idiomatic escape hatch for broad handlers.
        """
        for inner in ast.walk(handler):
            if not isinstance(inner, ast.Raise):
                continue
            if inner.exc is None:
                return True
            if (isinstance(inner.exc, ast.Name)
                    and inner.exc.id == handler.name):
                return True
            target = inner.exc
            if isinstance(target, ast.Call):
                target = target.func
            if terminal_name(target) == "TamperedError":
                return True
        return False


# ------------------------------------------------------------- W005 taxonomy

def _worm_error_family() -> frozenset:
    """Every exception rooted at WormError, from the taxonomy module.

    Imported (not hard-coded) so adding an exception to
    ``repro.core.errors`` automatically teaches the lint about it.
    """
    from repro.core import errors
    return frozenset(errors.__all__)


#: Stdlib raises that stay legal: argument/state validation plus the
#: handful of protocol exceptions Python itself defines semantics for.
_STDLIB_ALLOWED = frozenset({
    "ValueError", "TypeError", "NotImplementedError", "AssertionError",
    "StopIteration", "SystemExit", "KeyboardInterrupt",
})


@register
class TaxonomyChecker(Checker):
    """W005: raises in ``src/repro`` are ``WormError``-rooted.

    Callers defend the whole WORM layer with one ``except WormError``
    clause; an ad-hoc ``RuntimeError`` slips through that net and an
    ad-hoc ``KeyError`` gets mistaken for a dict miss.  Allowed: the
    taxonomy of :mod:`repro.core.errors` (and local subclasses thereof),
    names imported from other ``repro`` modules (assumed rooted — the
    taxonomy module is where roots are audited), stdlib
    ``ValueError``/``TypeError`` for argument validation, and re-raises
    of caught variables.
    """

    rule = "W005"
    title = "taxonomy"
    rationale = ("raise WormError-rooted exceptions (or ValueError/"
                 "TypeError for argument validation) so `except "
                 "WormError` really covers the layer")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.package_path is None:
            return
        allowed = set(_worm_error_family()) | set(_STDLIB_ALLOWED)
        allowed |= self._repro_imported_errors(ctx.tree)
        allowed |= self._local_subclasses(ctx.tree, allowed)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            name = self._raised_class(node.exc)
            if name is None or name in allowed:
                continue
            yield ctx.finding(
                self.rule, node,
                f"raise of '{name}' outside the WormError taxonomy — root "
                "it at WormError (repro.core.errors) or use ValueError/"
                "TypeError for argument validation")

    @staticmethod
    def _raised_class(exc: ast.AST) -> Optional[str]:
        """Class name being raised, or None when unresolvable/a variable."""
        target = exc
        if isinstance(target, ast.Call):
            target = target.func
        name = terminal_name(target)
        if name is None:
            return None
        # Lowercase terminal → almost certainly a bound exception
        # variable (`raise last_exc`), which is a re-raise, not a choice
        # of taxonomy.
        if not name[:1].isupper():
            return None
        return name

    @staticmethod
    def _repro_imported_errors(tree: ast.Module) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(tree):
            if (isinstance(node, ast.ImportFrom) and node.module
                    and node.module.split(".")[0] == "repro"):
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if bound.endswith("Error"):
                        names.add(bound)
        return names

    @staticmethod
    def _local_subclasses(tree: ast.Module, allowed: Set[str]) -> Set[str]:
        grown: Set[str] = set()
        # Two passes pick up subclass-of-a-local-subclass chains.
        for _ in range(2):
            for node in ast.walk(tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                bases = {terminal_name(base) for base in node.bases}
                if bases & (allowed | grown):
                    grown.add(node.name)
        return grown


# --------------------------------------------------------- W006 no laundering

@register
class LaunderingChecker(Checker):
    """W006: weak constructs must enter the strengthening queue.

    §4.3's deal: bursts may be witnessed with 512-bit signatures or
    HMACs **only because** idle periods strengthen them within the weak
    construct's security lifetime.  A code path that witnesses weakly
    and lets the result escape without enqueueing it for strengthening
    has laundered a burst signature into apparent full strength — the
    exact bug class PR 2 fixed in the flush path.  Inside ``repro.core``:

    * a function whose ``witness_write(...)`` call can produce a weak
      construct (``strength=`` anything but the literal
      ``Strength.STRONG``, or the ``Strength.WEAK``/``Strength.HMAC``
      literals) must also call ``strengthening.enqueue(...)`` (or
      ``hash_verification.enqueue`` for deferred hashes);
    * a public function must never ``return`` a ``witness_write(...)``
      result directly — there is no window left to enqueue it.
    """

    rule = "W006"
    title = "no-laundering"
    rationale = ("weak/burst witnessing must feed the strengthening "
                 "queue before results escape repro.core")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_package("repro/core/"):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node)

    def _check_function(self, ctx: ModuleContext,
                        func: ast.AST) -> Iterator[Finding]:
        weak_calls = []
        enqueues = False
        returns_witness = []
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                callee = node.func
                if (isinstance(callee, ast.Attribute)
                        and callee.attr == "witness_write"
                        and self._weak_capable(node)):
                    weak_calls.append(node)
                if (isinstance(callee, ast.Attribute)
                        and callee.attr == "enqueue"
                        and terminal_name(callee.value) in
                        ("strengthening", "hash_verification")):
                    enqueues = True
            elif isinstance(node, ast.Return) and node.value is not None:
                for sub in ast.walk(node.value):
                    if (isinstance(sub, ast.Call)
                            and isinstance(sub.func, ast.Attribute)
                            and sub.func.attr == "witness_write"):
                        returns_witness.append(node)
        if weak_calls and not enqueues:
            for call in weak_calls:
                yield ctx.finding(
                    self.rule, call,
                    "weak-capable witness_write(...) without a matching "
                    "strengthening.enqueue(...) in this function — weak "
                    "constructs must be queued for strengthening (§4.3), "
                    "never laundered")
        if not func.name.startswith("_"):
            for ret in returns_witness:
                yield ctx.finding(
                    self.rule, ret,
                    "public API returns witness_write(...) output directly — "
                    "materialize it and route weak constructs through the "
                    "strengthening queue first")

    @staticmethod
    def _weak_capable(call: ast.Call) -> bool:
        """Can this witness_write call produce a weak/HMAC construct?"""
        for keyword in call.keywords:
            if keyword.arg == "strength":
                return dotted_name(keyword.value) != "Strength.STRONG"
        if len(call.args) >= 4:   # positional strength
            return dotted_name(call.args[3]) != "Strength.STRONG"
        return False   # omitted → defaults to STRONG
